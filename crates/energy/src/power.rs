//! Node power model.

use serde::{Deserialize, Serialize};

/// Linear CPU power model: `P = idle + per_core × cores × load^γ`.
///
/// Calibrated loosely to an Intel E3-class node: ~45 W idle, ~8 W per busy
/// core. The exponent captures that partially-loaded cores draw
/// disproportionate power (clock gating is imperfect).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Idle node power, watts.
    pub idle_watts: f64,
    /// Incremental power per fully-busy core, watts.
    pub per_core_watts: f64,
    /// Load exponent γ (sub-linear power at partial load).
    pub load_exponent: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel { idle_watts: 45.0, per_core_watts: 8.0, load_exponent: 0.8 }
    }
}

impl PowerModel {
    /// Active power for `cores` allocated cores at `load ∈ [0, 1]`.
    ///
    /// Load values outside `[0, 1]` are clamped; NaN is treated as idle.
    pub fn power_watts(&self, cores: u32, load: f64) -> f64 {
        let load = if load.is_nan() { 0.0 } else { load.clamp(0.0, 1.0) };
        self.idle_watts + self.per_core_watts * f64::from(cores) * load.powf(self.load_exponent)
    }

    /// Energy for a constant-power interval, joules (convenience, no PDU).
    pub fn energy_joules(&self, cores: u32, load: f64, secs: f64) -> f64 {
        self.power_watts(cores, load) * secs.max(0.0)
    }

    /// Active power under DVFS: dynamic CPU power scales roughly with
    /// `V²f ∝ f³` when voltage follows frequency, so halving the clock cuts
    /// per-core draw to an eighth (the frequency-tuning extension's energy
    /// lever).
    pub fn power_watts_at_freq(&self, cores: u32, load: f64, freq_ratio: f64) -> f64 {
        let load = if load.is_nan() { 0.0 } else { load.clamp(0.0, 1.0) };
        let ratio = if freq_ratio.is_finite() { freq_ratio.clamp(0.1, 2.0) } else { 1.0 };
        self.idle_watts
            + self.per_core_watts
                * f64::from(cores)
                * load.powf(self.load_exponent)
                * ratio.powi(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_floor_power() {
        let m = PowerModel::default();
        assert_eq!(m.power_watts(16, 0.0), m.idle_watts);
        assert_eq!(m.power_watts(0, 1.0), m.idle_watts);
    }

    #[test]
    fn power_grows_with_cores_and_load() {
        let m = PowerModel::default();
        assert!(m.power_watts(8, 1.0) > m.power_watts(4, 1.0));
        assert!(m.power_watts(8, 1.0) > m.power_watts(8, 0.5));
    }

    #[test]
    fn bad_load_values_are_clamped() {
        let m = PowerModel::default();
        assert_eq!(m.power_watts(4, f64::NAN), m.idle_watts);
        assert_eq!(m.power_watts(4, 7.0), m.power_watts(4, 1.0));
        assert_eq!(m.power_watts(4, -3.0), m.idle_watts);
    }

    #[test]
    fn dvfs_power_follows_cubic_law() {
        let m = PowerModel::default();
        let full = m.power_watts_at_freq(8, 1.0, 1.0);
        let half = m.power_watts_at_freq(8, 1.0, 0.5);
        let dyn_full = full - m.idle_watts;
        let dyn_half = half - m.idle_watts;
        assert!((dyn_half / dyn_full - 0.125).abs() < 1e-9);
        assert_eq!(m.power_watts_at_freq(8, 1.0, 1.0), m.power_watts(8, 1.0));
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = PowerModel::default();
        let e = m.energy_joules(8, 1.0, 10.0);
        assert!((e - m.power_watts(8, 1.0) * 10.0).abs() < 1e-9);
        assert_eq!(m.energy_joules(8, 1.0, -5.0), 0.0);
    }
}
