//! Power modelling and energy accounting.
//!
//! The paper measures whole-cluster power with a LINDY iPower Control PDU,
//! sampled every second at 1 W resolution, and reports energy as the
//! trapezoidal integral of those samples (§3.2, §7.1.1). This crate
//! reproduces that pipeline against simulated time:
//!
//! * [`PowerModel`] — active power as a function of allocated cores and
//!   load (idle floor + per-active-core increment), per node;
//! * [`PduTrace`] — the 1 Hz sample stream with 1 W quantisation;
//! * [`PduTrace::energy_joules`] — trapezoidal integration, exactly the
//!   paper's estimator.
//!
//! # Example
//!
//! ```
//! use pipetune_energy::{PduTrace, PowerModel};
//!
//! let model = PowerModel::default();
//! let mut pdu = PduTrace::new();
//! // A 10-second epoch on 8 busy cores.
//! pdu.record_interval(0.0, 10.0, model.power_watts(8, 1.0));
//! let joules = pdu.energy_joules();
//! assert!(joules > 0.0);
//! ```

#![warn(missing_docs)]

pub mod observe;
mod pdu;
mod power;

pub use pdu::PduTrace;
pub use power::PowerModel;
