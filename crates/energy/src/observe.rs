//! Telemetry adapters for energy accounting: canonical metric names and
//! helpers recording per-epoch power/energy into a [`MetricsRegistry`].

use pipetune_telemetry::{MetricsRegistry, ENERGY_BUCKETS_J};

use crate::pdu::PduTrace;

pipetune_telemetry::metric_names! {
    /// Histogram: per-epoch energy attributed to a trial, joules.
    pub const EPOCH_ENERGY_J = "energy.epoch_j";
    /// Gauge: most recent whole-cluster power draw, watts.
    pub const POWER_WATTS = "energy.power_w";
    /// Counter: PDU samples recorded (1 Hz stream).
    pub const PDU_SAMPLES = "energy.pdu_samples";
}

/// Records one epoch's energy and the power it was drawn at.
pub fn record_epoch_energy(watts: f64, energy_j: f64, metrics: &mut MetricsRegistry) {
    metrics.observe(EPOCH_ENERGY_J, ENERGY_BUCKETS_J, energy_j);
    metrics.gauge_set(POWER_WATTS, watts);
}

/// Records a PDU trace's sample count (the 1 Hz stream the paper's
/// trapezoidal estimator integrates).
pub fn record_pdu_trace(trace: &PduTrace, metrics: &mut MetricsRegistry) {
    metrics.counter_add(PDU_SAMPLES, trace.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::PowerModel;

    #[test]
    fn epoch_energy_lands_in_histogram_and_gauge() {
        let model = PowerModel::default();
        let watts = model.power_watts(8, 1.0);
        let mut m = MetricsRegistry::new();
        record_epoch_energy(watts, watts * 60.0, &mut m);
        assert_eq!(m.histogram(EPOCH_ENERGY_J).unwrap().count(), 1);
        assert_eq!(m.gauge(POWER_WATTS), Some(watts));
    }

    #[test]
    fn pdu_trace_sample_count_ticks() {
        let mut pdu = PduTrace::new();
        pdu.record_interval(0.0, 10.0, 100.0);
        let mut m = MetricsRegistry::new();
        record_pdu_trace(&pdu, &mut m);
        assert_eq!(m.counter(PDU_SAMPLES), pdu.len() as u64);
    }
}
