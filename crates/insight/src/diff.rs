//! Structural and per-phase comparison of two traces.
//!
//! A [`TraceDiff`] answers "what changed between these two runs?" — the
//! question behind every regression hunt. Both traces are validated and
//! analysed with [`TraceReport`] first, so a diff of malformed traces
//! fails loudly instead of comparing garbage.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

use pipetune_telemetry::{TelemetrySnapshot, TraceError};

use crate::report::TraceReport;

/// The comparison of two traces (`a` is the baseline, `b` the candidate).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Whether the two traces export byte-identically.
    pub identical: bool,
    /// Span counts per kind name: `(a, b)`.
    pub span_counts: BTreeMap<String, (usize, usize)>,
    /// Event counts per kind name: `(a, b)`.
    pub event_counts: BTreeMap<String, (usize, usize)>,
    /// Per-phase attributed seconds summed over all runs: `(a, b)`.
    pub phase_secs: BTreeMap<String, (f64, f64)>,
    /// Total wall seconds summed over all runs: `(a, b)`.
    pub wall_secs: (f64, f64),
    /// Metric counters that differ: name → `(a, b)`.
    pub counter_deltas: BTreeMap<String, (u64, u64)>,
    /// Human-readable structural changes (run/rung/trial shape).
    pub structure_changes: Vec<String>,
}

fn count_by<T, K: Ord, F: Fn(&T) -> K>(items: &[T], key: F) -> BTreeMap<K, usize> {
    let mut out = BTreeMap::new();
    for item in items {
        *out.entry(key(item)).or_insert(0) += 1;
    }
    out
}

fn merge_counts<K: Ord + Clone>(
    a: &BTreeMap<K, usize>,
    b: &BTreeMap<K, usize>,
) -> BTreeMap<K, (usize, usize)> {
    let keys: BTreeSet<&K> = a.keys().chain(b.keys()).collect();
    keys.into_iter()
        .map(|k| {
            (k.clone(), (a.get(k).copied().unwrap_or(0), b.get(k).copied().unwrap_or(0)))
        })
        .collect()
}

impl TraceDiff {
    /// Compares two snapshots.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] if either trace fails validation.
    ///
    /// # Example
    ///
    /// ```
    /// use pipetune_insight::TraceDiff;
    /// use pipetune_telemetry::TelemetrySnapshot;
    ///
    /// let empty = TelemetrySnapshot::default();
    /// let diff = TraceDiff::between(&empty, &empty).unwrap();
    /// assert!(diff.identical);
    /// assert!(diff.render().contains("identical"));
    /// ```
    pub fn between(a: &TelemetrySnapshot, b: &TelemetrySnapshot) -> Result<Self, TraceError> {
        let report_a = TraceReport::from_snapshot(a)?;
        let report_b = TraceReport::from_snapshot(b)?;

        let mut phase_secs: BTreeMap<String, (f64, f64)> = BTreeMap::new();
        for run in &report_a.runs {
            for (phase, secs) in &run.phases.secs {
                phase_secs.entry(phase.clone()).or_insert((0.0, 0.0)).0 += secs;
            }
            phase_secs.entry("retry_overhead".into()).or_insert((0.0, 0.0)).0 +=
                run.phases.retry_overhead_secs;
        }
        for run in &report_b.runs {
            for (phase, secs) in &run.phases.secs {
                phase_secs.entry(phase.clone()).or_insert((0.0, 0.0)).1 += secs;
            }
            phase_secs.entry("retry_overhead".into()).or_insert((0.0, 0.0)).1 +=
                run.phases.retry_overhead_secs;
        }

        let mut counter_deltas = BTreeMap::new();
        let counters_a: BTreeMap<String, u64> =
            a.metrics.counters().map(|(k, v)| (k.to_string(), v)).collect();
        let counters_b: BTreeMap<String, u64> =
            b.metrics.counters().map(|(k, v)| (k.to_string(), v)).collect();
        let names: BTreeSet<&String> = counters_a.keys().chain(counters_b.keys()).collect();
        for name in names {
            let va = counters_a.get(name).copied().unwrap_or(0);
            let vb = counters_b.get(name).copied().unwrap_or(0);
            if va != vb {
                counter_deltas.insert(name.clone(), (va, vb));
            }
        }

        let mut structure_changes = Vec::new();
        if report_a.runs.len() != report_b.runs.len() {
            structure_changes.push(format!(
                "tuning runs: {} -> {}",
                report_a.runs.len(),
                report_b.runs.len()
            ));
        }
        for (i, (ra, rb)) in report_a.runs.iter().zip(&report_b.runs).enumerate() {
            if ra.label != rb.label {
                structure_changes.push(format!("run {i}: label `{}` -> `{}`", ra.label, rb.label));
            }
            if ra.workload != rb.workload {
                structure_changes
                    .push(format!("run {i}: workload {} -> {}", ra.workload, rb.workload));
            }
            if ra.rungs.len() != rb.rungs.len() {
                structure_changes
                    .push(format!("run {i}: rungs {} -> {}", ra.rungs.len(), rb.rungs.len()));
            }
            if ra.trials != rb.trials {
                structure_changes.push(format!("run {i}: trials {} -> {}", ra.trials, rb.trials));
            }
            if ra.epochs != rb.epochs {
                structure_changes.push(format!("run {i}: epochs {} -> {}", ra.epochs, rb.epochs));
            }
        }

        Ok(TraceDiff {
            identical: a.to_json_string() == b.to_json_string(),
            span_counts: merge_counts(
                &count_by(&a.spans, |s| s.kind.name().to_string()),
                &count_by(&b.spans, |s| s.kind.name().to_string()),
            ),
            event_counts: merge_counts(
                &count_by(&a.events, |e| e.kind.name().to_string()),
                &count_by(&b.events, |e| e.kind.name().to_string()),
            ),
            phase_secs,
            wall_secs: (
                report_a.runs.iter().map(|r| r.wall_secs).sum(),
                report_b.runs.iter().map(|r| r.wall_secs).sum(),
            ),
            counter_deltas,
            structure_changes,
        })
    }

    /// Parses two JSON traces and compares them.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when either text is not a valid trace.
    pub fn between_json(a: &str, b: &str) -> Result<Self, TraceError> {
        TraceDiff::between(
            &TelemetrySnapshot::from_json_str(a)?,
            &TelemetrySnapshot::from_json_str(b)?,
        )
    }

    /// Renders the diff as a deterministic plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.identical {
            out.push_str("traces are byte-identical\n");
            return out;
        }
        let _ = writeln!(
            out,
            "wall secs: {:.3} -> {:.3} ({:+.3})",
            self.wall_secs.0,
            self.wall_secs.1,
            self.wall_secs.1 - self.wall_secs.0
        );
        let _ = writeln!(out, "phase attribution (secs):");
        for (phase, (va, vb)) in &self.phase_secs {
            let _ = writeln!(out, "  {phase:<16} {va:>12.3} -> {vb:>12.3} ({:+.3})", vb - va);
        }
        let _ = writeln!(out, "span counts:");
        for (kind, (va, vb)) in &self.span_counts {
            let marker = if va == vb { " " } else { "*" };
            let _ = writeln!(out, " {marker}{kind:<16} {va:>6} -> {vb:>6}");
        }
        let _ = writeln!(out, "event counts:");
        for (kind, (va, vb)) in &self.event_counts {
            let marker = if va == vb { " " } else { "*" };
            let _ = writeln!(out, " {marker}{kind:<16} {va:>6} -> {vb:>6}");
        }
        if !self.counter_deltas.is_empty() {
            let _ = writeln!(out, "changed counters:");
            for (name, (va, vb)) in &self.counter_deltas {
                let _ = writeln!(out, "  {name}: {va} -> {vb}");
            }
        }
        if !self.structure_changes.is_empty() {
            let _ = writeln!(out, "structure changes:");
            for change in &self.structure_changes {
                let _ = writeln!(out, "  {change}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle};

    fn trace(trials: usize, trial_secs: f64) -> TelemetrySnapshot {
        let t = TelemetryHandle::enabled();
        let end = trial_secs;
        let run = t.open_span(
            SpanId::NONE,
            SpanKind::TuningRun,
            "pipetune",
            0.0,
            vec![("workload", "w".into()), ("parallel_slots", 2u64.into())],
        );
        let rung = t.open_span(run, SpanKind::Rung, "round 0", 0.0, vec![("round", 0u64.into())]);
        let batch = t.open_span(rung, SpanKind::Batch, "batch", 0.0, vec![]);
        for i in 0..trials {
            let trial =
                t.open_span(batch, SpanKind::Trial, format!("trial {i}"), 0.0, vec![]);
            let epoch = t.open_span(
                trial,
                SpanKind::Epoch,
                "epoch 1 (tuned)",
                0.0,
                vec![("phase", "tuned".into())],
            );
            t.close_span(epoch, end);
            t.close_span(trial, end);
        }
        t.close_span(batch, end);
        t.close_span(rung, end);
        t.close_span(run, end);
        t.counter_add("epochs.total", trials as u64);
        t.snapshot().unwrap()
    }

    #[test]
    fn identical_traces_diff_empty() {
        let diff = TraceDiff::between(&trace(2, 1.0), &trace(2, 1.0)).unwrap();
        assert!(diff.identical);
        assert!(diff.counter_deltas.is_empty());
        assert!(diff.structure_changes.is_empty());
    }

    #[test]
    fn diff_reports_phase_structure_and_counter_changes() {
        let diff = TraceDiff::between(&trace(2, 1.0), &trace(3, 2.0)).unwrap();
        assert!(!diff.identical);
        assert_eq!(diff.phase_secs["tuned"], (2.0, 6.0));
        assert_eq!(diff.span_counts["trial"], (2, 3));
        assert_eq!(diff.counter_deltas["epochs.total"], (2, 3));
        assert!(diff.structure_changes.iter().any(|c| c.contains("trials 2 -> 3")));
        assert_eq!(diff.wall_secs, (1.0, 2.0));
        let text = diff.render();
        for needle in ["wall secs", "tuned", "*trial", "epochs.total: 2 -> 3", "trials 2 -> 3"] {
            assert!(text.contains(needle), "diff render missing {needle}:\n{text}");
        }
    }

    #[test]
    fn diff_validates_both_sides() {
        let mut bad = trace(1, 1.0);
        bad.spans[1].parent = Some(7);
        assert!(TraceDiff::between(&trace(1, 1.0), &bad).is_err());
        assert!(TraceDiff::between(&bad, &trace(1, 1.0)).is_err());
    }
}
