//! Critical-path analysis over the `tuning_run > rung > batch > trial >
//! epoch` span tree.
//!
//! A [`TraceReport`] is a pure function of a validated
//! [`TelemetrySnapshot`]: per-phase time attribution, per-rung slot
//! utilization, straggler ranking and the critical path through each
//! tuning run. Duration percentiles are computed by replaying the trace
//! into the embedded [`pipetune_tsdb`] store and querying its
//! [`Aggregate::P50`]/[`Aggregate::P95`]/[`Aggregate::P99`] selectors —
//! the same path a real InfluxDB deployment would serve.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use pipetune_telemetry::{AttrValue, Attrs, EventKind, Span, SpanKind, TelemetrySnapshot, TraceError};
use pipetune_tsdb::{Aggregate, Database, Point, Query};

/// Looks up an attribute by key (first occurrence wins).
fn attr<'a>(attrs: &'a Attrs, key: &str) -> Option<&'a AttrValue> {
    attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn attr_str<'a>(attrs: &'a Attrs, key: &str) -> Option<&'a str> {
    match attr(attrs, key) {
        Some(AttrValue::Str(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn attr_f64(attrs: &Attrs, key: &str) -> Option<f64> {
    attr(attrs, key).and_then(AttrValue::as_field)
}

fn attr_bool(attrs: &Attrs, key: &str) -> Option<bool> {
    match attr(attrs, key) {
        Some(AttrValue::Bool(b)) => Some(*b),
        _ => None,
    }
}

/// A closed span's duration; `None` while the span is still open.
fn duration(span: &Span) -> Option<f64> {
    (span.start_secs.is_finite() && span.end_secs.is_finite())
        .then_some(span.end_secs - span.start_secs)
}

/// Duration percentiles (nearest-rank) over a population of spans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationStats {
    /// Median, seconds.
    pub p50_secs: f64,
    /// 95th percentile, seconds.
    pub p95_secs: f64,
    /// 99th percentile, seconds.
    pub p99_secs: f64,
}

/// Per-phase time attribution for one tuning run.
///
/// Keys are the epoch phases recorded by the pipeline (`profile`,
/// `probe`, `tuned`, `reused`, `fixed`); values are summed epoch
/// durations on the trial clock. Crash-recovery overhead (wasted partial
/// epochs plus retry backoff) is attributed separately — it never appears
/// as an epoch span.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseBreakdown {
    /// Seconds spent per phase, keyed by phase name (sorted).
    pub secs: BTreeMap<String, f64>,
    /// Crash-recovery overhead: `wasted_secs + backoff_secs` summed over
    /// the run's fault events.
    pub retry_overhead_secs: f64,
}

impl PhaseBreakdown {
    /// Total attributed seconds including retry overhead.
    pub fn total_secs(&self) -> f64 {
        self.secs.values().sum::<f64>() + self.retry_overhead_secs
    }
}

/// One trial on the straggler ranking (or a rung's critical trial).
#[derive(Debug, Clone, PartialEq)]
pub struct Straggler {
    /// Index of the trial span within the trace.
    pub span: usize,
    /// The trial span's label (`trial 7`).
    pub label: String,
    /// Trial duration on the trial-cumulative clock, seconds.
    pub duration_secs: f64,
}

/// Utilization analysis of one scheduler round.
#[derive(Debug, Clone, PartialEq)]
pub struct RungReport {
    /// Scheduler round number (the rung's `round` attribute).
    pub round: u64,
    /// Wall-clock duration of the round, seconds.
    pub wall_secs: f64,
    /// Number of trial spans executed in the round.
    pub trials: usize,
    /// Summed trial durations, seconds (work actually done).
    pub busy_secs: f64,
    /// `parallel_slots × wall_secs`: what the cluster could have done.
    pub capacity_secs: f64,
    /// `max(0, capacity − busy)`: slot time spent waiting.
    pub idle_secs: f64,
    /// `busy / capacity` (0 when the round had no capacity).
    pub utilization: f64,
    /// The round's longest trial — the rung's critical path.
    pub critical_trial: Option<Straggler>,
}

/// The analysis of one `tuning_run` root span.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Root span label (`pipetune`, `tune_v1`, `tune_v2`).
    pub label: String,
    /// Workload name from the root span attributes.
    pub workload: String,
    /// Experiment seed, when recorded.
    pub seed: Option<u64>,
    /// Parallel trial slots the run was scheduled onto.
    pub slots: u64,
    /// Total wall-clock time of the run, seconds.
    pub wall_secs: f64,
    /// Trial spans belonging to the run.
    pub trials: usize,
    /// Epoch spans belonging to the run.
    pub epochs: usize,
    /// Per-phase time attribution.
    pub phases: PhaseBreakdown,
    /// Per-round utilization, in round order.
    pub rungs: Vec<RungReport>,
    /// Sum of each round's longest trial: the shortest possible wall time
    /// with unlimited slots. `wall − critical_path` is scheduling
    /// headroom; `critical_path` is the part only faster trials can fix.
    pub critical_path_secs: f64,
    /// Epoch-reuse cache lookups that adopted a cached prefix (from the
    /// run's `cache_lookup` events; 0 for cache-less runs).
    pub cache_hits: u64,
    /// Epoch-reuse cache lookups that fell through to a cold start.
    pub cache_misses: u64,
    /// Simulated epoch-seconds the cache saved the run, summed over its
    /// hit events (trained cost of the adopted prefixes minus the charged
    /// reload cost).
    pub cache_saved_secs: f64,
    /// The run's slowest trials, longest first (ties broken by span
    /// index), capped at [`RunReport::MAX_STRAGGLERS`].
    pub stragglers: Vec<Straggler>,
    /// Trial-duration percentiles, when the run had trials.
    pub trial_stats: Option<DurationStats>,
    /// Epoch-duration percentiles, when the run had epochs.
    pub epoch_stats: Option<DurationStats>,
}

impl RunReport {
    /// Straggler ranking length.
    pub const MAX_STRAGGLERS: usize = 5;
}

/// Summary of the online monitor's `alert` events in a trace (the
/// "Incidents" section; see `docs/monitoring.md`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IncidentSummary {
    /// Total alert events in the trace.
    pub total: usize,
    /// Alert counts per detector name, sorted.
    pub by_detector: BTreeMap<String, u64>,
    /// Alert counts per severity name, sorted.
    pub by_severity: BTreeMap<String, u64>,
    /// Severity/detector/message of the first alerts in trace order,
    /// capped at [`IncidentSummary::MAX_SAMPLES`].
    pub samples: Vec<String>,
}

impl IncidentSummary {
    /// How many alert lines the summary quotes verbatim.
    pub const MAX_SAMPLES: usize = 5;

    fn from_snapshot(snapshot: &TelemetrySnapshot) -> Option<Self> {
        let mut summary = IncidentSummary::default();
        for event in &snapshot.events {
            if event.kind != EventKind::Alert {
                continue;
            }
            summary.total += 1;
            let detector = attr_str(&event.attrs, "detector").unwrap_or("?");
            let severity = attr_str(&event.attrs, "severity").unwrap_or("?");
            *summary.by_detector.entry(detector.to_string()).or_insert(0) += 1;
            *summary.by_severity.entry(severity.to_string()).or_insert(0) += 1;
            if summary.samples.len() < Self::MAX_SAMPLES {
                let message = attr_str(&event.attrs, "message").unwrap_or("?");
                summary.samples.push(format!(
                    "[{severity}] {detector} @ {:.3}s: {message}",
                    event.at_secs
                ));
            }
        }
        (summary.total > 0).then_some(summary)
    }
}

/// The full critical-path report over a trace (one entry per tuning run).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Per-run analyses, in root-span order.
    pub runs: Vec<RunReport>,
    /// Monitor incidents found in the trace; `None` when the trace holds
    /// no `alert` events, so reports over monitor-less traces render
    /// exactly as they did before the monitor existed.
    pub incidents: Option<IncidentSummary>,
}

impl TraceReport {
    /// Analyses a snapshot. Validates first: a malformed span tree is
    /// rejected with the underlying [`TraceError`] rather than silently
    /// misattributed.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] found by
    /// [`TelemetrySnapshot::validate`].
    ///
    /// # Example
    ///
    /// ```
    /// use pipetune_insight::TraceReport;
    /// use pipetune_telemetry::TelemetrySnapshot;
    ///
    /// let empty = TelemetrySnapshot::default();
    /// assert!(TraceReport::from_snapshot(&empty).unwrap().runs.is_empty());
    /// ```
    pub fn from_snapshot(snapshot: &TelemetrySnapshot) -> Result<Self, TraceError> {
        snapshot.validate()?;
        let spans = &snapshot.spans;

        // Parents always precede children (validated), so single passes
        // resolve each span's tuning-run root and nearest rung ancestor.
        // A `tuning_run` is always its own root — including when a
        // multi-job service nested it under a `job` span — so per-run
        // attribution is identical whether the run executed standalone or
        // as one tenant of a service.
        let mut root_of: Vec<Option<usize>> = Vec::with_capacity(spans.len());
        let mut rung_of: Vec<Option<usize>> = Vec::with_capacity(spans.len());
        for (i, span) in spans.iter().enumerate() {
            let (root, rung) = if span.kind == SpanKind::TuningRun {
                (Some(i), None)
            } else {
                match span.parent {
                    None => (None, None),
                    Some(p) => {
                        let p = p as usize;
                        let rung =
                            if spans[p].kind == SpanKind::Rung { Some(p) } else { rung_of[p] };
                        (root_of[p], rung)
                    }
                }
            };
            root_of.push(root);
            rung_of.push(rung);
        }

        let mut runs = Vec::new();
        for (root, root_span) in spans.iter().enumerate() {
            if root_of[root] != Some(root) {
                continue;
            }
            let member = |i: usize| root_of[i] == Some(root);
            let slots = attr_f64(&root_span.attrs, "parallel_slots").unwrap_or(1.0).max(1.0);

            // Wall time: the root's own extent, falling back to the last
            // child end on the shared clock if the root was left open.
            let wall_secs = duration(root_span).unwrap_or_else(|| {
                spans
                    .iter()
                    .enumerate()
                    .filter(|(i, s)| member(*i) && s.kind == SpanKind::Rung)
                    .filter_map(|(_, s)| s.end_secs.is_finite().then_some(s.end_secs))
                    .fold(0.0, f64::max)
                    - root_span.start_secs
            });

            // Phase attribution from epoch spans; retry overhead from the
            // run's fault events (crash recovery never emits epoch spans).
            let mut phases = PhaseBreakdown::default();
            let mut epochs = 0usize;
            for (i, span) in spans.iter().enumerate() {
                if !member(i) || span.kind != SpanKind::Epoch {
                    continue;
                }
                epochs += 1;
                if let Some(d) = duration(span) {
                    let phase = attr_str(&span.attrs, "phase").unwrap_or("unknown");
                    *phases.secs.entry(phase.to_string()).or_insert(0.0) += d;
                }
            }
            let mut cache_hits = 0u64;
            let mut cache_misses = 0u64;
            let mut cache_saved_secs = 0.0f64;
            for event in &snapshot.events {
                let Some(owner) = event.span else { continue };
                if !member(owner as usize) {
                    continue;
                }
                match event.kind {
                    EventKind::Fault => {
                        phases.retry_overhead_secs += attr_f64(&event.attrs, "wasted_secs")
                            .unwrap_or(0.0)
                            + attr_f64(&event.attrs, "backoff_secs").unwrap_or(0.0);
                    }
                    EventKind::CacheLookup => {
                        if attr_bool(&event.attrs, "hit") == Some(true) {
                            cache_hits += 1;
                            cache_saved_secs +=
                                attr_f64(&event.attrs, "saved_secs").unwrap_or(0.0);
                        } else {
                            cache_misses += 1;
                        }
                    }
                    _ => {}
                }
            }

            // Trials, grouped by owning rung.
            let mut trials: Vec<Straggler> = Vec::new();
            let mut by_rung: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for (i, span) in spans.iter().enumerate() {
                if !member(i) || span.kind != SpanKind::Trial {
                    continue;
                }
                let d = duration(span).unwrap_or(0.0);
                trials.push(Straggler { span: i, label: span.label.clone(), duration_secs: d });
                if let Some(rung) = rung_of[i] {
                    by_rung.entry(rung).or_default().push(trials.len() - 1);
                }
            }

            let mut rungs = Vec::new();
            let mut critical_path_secs = 0.0;
            for (i, span) in spans.iter().enumerate() {
                if !member(i) || span.kind != SpanKind::Rung {
                    continue;
                }
                let wall = duration(span).unwrap_or(0.0);
                let members = by_rung.get(&i).map_or(&[][..], Vec::as_slice);
                let busy: f64 = members.iter().map(|&t| trials[t].duration_secs).sum();
                let capacity = slots * wall;
                let critical = members
                    .iter()
                    .map(|&t| &trials[t])
                    .max_by(|a, b| {
                        a.duration_secs
                            .total_cmp(&b.duration_secs)
                            // Longest first; on exact ties prefer the
                            // earlier span so the report is deterministic.
                            .then(b.span.cmp(&a.span))
                    })
                    .cloned();
                critical_path_secs += critical.as_ref().map_or(0.0, |c| c.duration_secs);
                rungs.push(RungReport {
                    round: attr_f64(&span.attrs, "round").unwrap_or(0.0) as u64,
                    wall_secs: wall,
                    trials: members.len(),
                    busy_secs: busy,
                    capacity_secs: capacity,
                    idle_secs: (capacity - busy).max(0.0),
                    utilization: if capacity > 0.0 { busy / capacity } else { 0.0 },
                    critical_trial: critical,
                });
            }

            let mut stragglers = trials.clone();
            stragglers.sort_by(|a, b| {
                b.duration_secs.total_cmp(&a.duration_secs).then(a.span.cmp(&b.span))
            });
            stragglers.truncate(RunReport::MAX_STRAGGLERS);

            // Percentiles through the tsdb: replay durations as points and
            // let the store's nearest-rank selectors answer.
            let db = Database::new();
            for (idx, trial) in trials.iter().enumerate() {
                let _ = db.write(
                    Point::new("trial_secs", idx as u64).field("secs", trial.duration_secs),
                );
            }
            let mut epoch_idx = 0u64;
            for (i, span) in spans.iter().enumerate() {
                if member(i) && span.kind == SpanKind::Epoch {
                    if let Some(d) = duration(span) {
                        let _ = db.write(Point::new("epoch_secs", epoch_idx).field("secs", d));
                        epoch_idx += 1;
                    }
                }
            }

            runs.push(RunReport {
                label: root_span.label.clone(),
                workload: attr_str(&root_span.attrs, "workload").unwrap_or("?").to_string(),
                seed: attr_f64(&root_span.attrs, "seed").map(|s| s as u64),
                slots: slots as u64,
                wall_secs,
                trials: trials.len(),
                epochs,
                phases,
                rungs,
                critical_path_secs,
                cache_hits,
                cache_misses,
                cache_saved_secs,
                stragglers,
                trial_stats: duration_stats(&db, "trial_secs"),
                epoch_stats: duration_stats(&db, "epoch_secs"),
            });
        }
        Ok(TraceReport { runs, incidents: IncidentSummary::from_snapshot(snapshot) })
    }

    /// Parses a JSON trace and analyses it in one step.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the text is not a valid trace export
    /// or the span tree fails validation.
    pub fn from_json_str(text: &str) -> Result<Self, TraceError> {
        TraceReport::from_snapshot(&TelemetrySnapshot::from_json_str(text)?)
    }

    /// Renders the report as a deterministic plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.runs.is_empty() {
            out.push_str("trace contains no tuning runs\n");
            self.render_incidents(&mut out);
            return out;
        }
        for run in &self.runs {
            let _ = writeln!(
                out,
                "run `{}` — workload {}, seed {}, {} slot(s)",
                run.label,
                run.workload,
                run.seed.map_or_else(|| "?".to_string(), |s| s.to_string()),
                run.slots,
            );
            let _ = writeln!(
                out,
                "  wall {:.3}s | {} trials, {} epochs | critical path {:.3}s ({:.1}% of wall)",
                run.wall_secs,
                run.trials,
                run.epochs,
                run.critical_path_secs,
                percent(run.critical_path_secs, run.wall_secs),
            );
            let _ = writeln!(out, "  phase attribution (trial clock):");
            let total = run.phases.total_secs().max(f64::MIN_POSITIVE);
            for (phase, secs) in &run.phases.secs {
                let _ = writeln!(
                    out,
                    "    {phase:<16} {secs:>12.3}s  ({:.1}%)",
                    100.0 * secs / total
                );
            }
            let _ = writeln!(
                out,
                "    {:<16} {:>12.3}s  ({:.1}%)",
                "retry_overhead",
                run.phases.retry_overhead_secs,
                100.0 * run.phases.retry_overhead_secs / total
            );
            if run.cache_hits + run.cache_misses > 0 {
                let _ = writeln!(
                    out,
                    "  epoch cache: {} hit(s), {} miss(es) | saved {:.3}s ({:.1}% of wall)",
                    run.cache_hits,
                    run.cache_misses,
                    run.cache_saved_secs,
                    percent(run.cache_saved_secs, run.wall_secs + run.cache_saved_secs),
                );
            }
            let _ = writeln!(out, "  rungs:");
            for rung in &run.rungs {
                let critical = rung.critical_trial.as_ref().map_or_else(
                    || "-".to_string(),
                    |c| format!("{} ({:.3}s)", c.label, c.duration_secs),
                );
                let _ = writeln!(
                    out,
                    "    round {:>3}: wall {:>10.3}s | {:>3} trials | util {:>5.1}% | idle {:>10.3}s | longest {}",
                    rung.round,
                    rung.wall_secs,
                    rung.trials,
                    100.0 * rung.utilization,
                    rung.idle_secs,
                    critical,
                );
            }
            if !run.stragglers.is_empty() {
                let list: Vec<String> = run
                    .stragglers
                    .iter()
                    .map(|s| format!("{} ({:.3}s)", s.label, s.duration_secs))
                    .collect();
                let _ = writeln!(out, "  stragglers: {}", list.join(", "));
            }
            if let Some(stats) = &run.trial_stats {
                let _ = writeln!(
                    out,
                    "  trial secs  p50 {:.3} | p95 {:.3} | p99 {:.3}",
                    stats.p50_secs, stats.p95_secs, stats.p99_secs
                );
            }
            if let Some(stats) = &run.epoch_stats {
                let _ = writeln!(
                    out,
                    "  epoch secs  p50 {:.3} | p95 {:.3} | p99 {:.3}",
                    stats.p50_secs, stats.p95_secs, stats.p99_secs
                );
            }
        }
        self.render_incidents(&mut out);
        out
    }

    /// Appends the "Incidents" section when the trace carried alerts;
    /// alert-free traces render byte-identically to pre-monitor reports.
    fn render_incidents(&self, out: &mut String) {
        let Some(incidents) = &self.incidents else { return };
        let _ = writeln!(out, "incidents: {} alert(s)", incidents.total);
        let by_detector: Vec<String> = incidents
            .by_detector
            .iter()
            .map(|(detector, n)| format!("{detector} {n}"))
            .collect();
        let _ = writeln!(out, "  by detector: {}", by_detector.join(", "));
        let by_severity: Vec<String> = incidents
            .by_severity
            .iter()
            .map(|(severity, n)| format!("{severity} {n}"))
            .collect();
        let _ = writeln!(out, "  by severity: {}", by_severity.join(", "));
        for sample in &incidents.samples {
            let _ = writeln!(out, "    {sample}");
        }
        if incidents.total > incidents.samples.len() {
            let _ = writeln!(
                out,
                "    ... and {} more (see the incident timeline export)",
                incidents.total - incidents.samples.len()
            );
        }
    }
}

fn percent(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

fn duration_stats(db: &Database, measurement: &str) -> Option<DurationStats> {
    let query = Query::measurement(measurement);
    let get = |agg| db.aggregate(&query, "secs", agg).ok().flatten();
    Some(DurationStats {
        p50_secs: get(Aggregate::P50)?,
        p95_secs: get(Aggregate::P95)?,
        p99_secs: get(Aggregate::P99)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_telemetry::{SpanId, TelemetryHandle};

    /// Two rounds on two slots: round 0 runs trials of 4s and 2s, round 1
    /// a single 3s trial. Epochs split each trial into phases.
    fn sample() -> TelemetrySnapshot {
        let t = TelemetryHandle::enabled();
        let run = t.open_span(
            SpanId::NONE,
            SpanKind::TuningRun,
            "pipetune",
            0.0,
            vec![
                ("workload", "lenet/mnist".into()),
                ("seed", 41u64.into()),
                ("parallel_slots", 2u64.into()),
            ],
        );
        let r0 = t.open_span(run, SpanKind::Rung, "round 0", 0.0, vec![("round", 0u64.into())]);
        let b0 = t.open_span(r0, SpanKind::Batch, "batch of 2", 0.0, vec![]);
        let tr0 = t.open_span(b0, SpanKind::Trial, "trial 0", 0.0, vec![]);
        let e0 = t.open_span(
            tr0,
            SpanKind::Epoch,
            "epoch 1 (profile)",
            0.0,
            vec![("phase", "profile".into())],
        );
        t.close_span(e0, 1.0);
        let e1 = t.open_span(
            tr0,
            SpanKind::Epoch,
            "epoch 2 (tuned)",
            1.0,
            vec![("phase", "tuned".into())],
        );
        t.close_span(e1, 4.0);
        t.close_span(tr0, 4.0);
        let tr1 = t.open_span(b0, SpanKind::Trial, "trial 1", 0.0, vec![]);
        let e2 = t.open_span(
            tr1,
            SpanKind::Epoch,
            "epoch 1 (probe)",
            0.0,
            vec![("phase", "probe".into())],
        );
        t.close_span(e2, 2.0);
        t.close_span(tr1, 2.0);
        t.close_span(b0, 4.0);
        t.close_span(r0, 4.0);
        let r1 = t.open_span(run, SpanKind::Rung, "round 1", 4.0, vec![("round", 1u64.into())]);
        let b1 = t.open_span(r1, SpanKind::Batch, "batch of 1", 4.0, vec![]);
        let tr2 = t.open_span(b1, SpanKind::Trial, "trial 2", 2.0, vec![]);
        t.event(
            tr2,
            EventKind::Fault,
            3.0,
            vec![("wasted_secs", 0.5f64.into()), ("backoff_secs", 0.25f64.into())],
        );
        t.close_span(tr2, 5.0);
        t.close_span(b1, 7.0);
        t.close_span(r1, 7.0);
        t.close_span(run, 7.0);
        t.snapshot().unwrap()
    }

    #[test]
    fn report_attributes_phases_rungs_and_critical_path() {
        let report = TraceReport::from_snapshot(&sample()).unwrap();
        assert_eq!(report.runs.len(), 1);
        let run = &report.runs[0];
        assert_eq!(run.label, "pipetune");
        assert_eq!(run.workload, "lenet/mnist");
        assert_eq!(run.seed, Some(41));
        assert_eq!(run.slots, 2);
        assert_eq!(run.trials, 3);
        assert_eq!(run.epochs, 3);
        assert_eq!(run.wall_secs, 7.0);

        assert_eq!(run.phases.secs["profile"], 1.0);
        assert_eq!(run.phases.secs["tuned"], 3.0);
        assert_eq!(run.phases.secs["probe"], 2.0);
        assert_eq!(run.phases.retry_overhead_secs, 0.75);

        // Round 0: busy 6s over 2×4s capacity; round 1: 3s over 2×3s.
        assert_eq!(run.rungs.len(), 2);
        assert_eq!(run.rungs[0].busy_secs, 6.0);
        assert_eq!(run.rungs[0].capacity_secs, 8.0);
        assert_eq!(run.rungs[0].idle_secs, 2.0);
        assert!((run.rungs[0].utilization - 0.75).abs() < 1e-12);
        assert_eq!(run.rungs[1].trials, 1);

        // Critical path: 4s (trial 0) + 3s (trial 2).
        assert_eq!(run.critical_path_secs, 7.0);
        assert_eq!(run.stragglers[0].label, "trial 0");
        assert_eq!(run.stragglers[1].label, "trial 2");

        let stats = run.trial_stats.as_ref().unwrap();
        assert_eq!(stats.p50_secs, 3.0);
        assert_eq!(stats.p99_secs, 4.0);
    }

    #[test]
    fn service_nested_runs_are_still_their_own_roots() {
        // service > job > tuning_run: the run must get its own RunReport,
        // identical in shape to a standalone run's.
        let t = TelemetryHandle::enabled();
        let svc = t.open_span(SpanId::NONE, SpanKind::Service, "service fifo", 0.0, vec![]);
        for job in 0..2u64 {
            let j = t.open_span(svc, SpanKind::Job, "job", job as f64, vec![]);
            let run = t.open_span(
                j,
                SpanKind::TuningRun,
                "pipetune",
                0.0,
                vec![("workload", "lenet/mnist".into()), ("parallel_slots", 2u64.into())],
            );
            let rung = t.open_span(run, SpanKind::Rung, "round 0", 0.0, vec![("round", 0u64.into())]);
            let batch = t.open_span(rung, SpanKind::Batch, "batch of 1", 0.0, vec![]);
            let trial = t.open_span(batch, SpanKind::Trial, "trial 0", 0.0, vec![]);
            t.close_span(trial, 3.0);
            t.close_span(batch, 3.0);
            t.close_span(rung, 3.0);
            t.close_span(run, 3.0);
            t.close_span(j, job as f64 + 3.0);
        }
        t.close_span(svc, 4.0);
        let report = TraceReport::from_snapshot(&t.snapshot().unwrap()).unwrap();
        assert_eq!(report.runs.len(), 2, "one report per nested run");
        for run in &report.runs {
            assert_eq!(run.workload, "lenet/mnist");
            assert_eq!(run.trials, 1);
            assert_eq!(run.wall_secs, 3.0);
            assert_eq!(run.critical_path_secs, 3.0);
        }
    }

    #[test]
    fn incidents_section_appears_only_with_alert_events() {
        // Alert-free trace: no incidents, render byte-identical to the
        // pre-monitor report format.
        let clean = TraceReport::from_snapshot(&sample()).unwrap();
        assert!(clean.incidents.is_none());
        assert!(!clean.render().contains("incidents:"));

        // The same trace with injected alerts grows an Incidents section.
        let mut snap = sample();
        for (at, detector, severity) in
            [(4.0, "stall", "warning"), (5.0, "stall", "critical"), (6.0, "crash_loop", "critical")]
        {
            snap.events.push(pipetune_telemetry::Event {
                kind: EventKind::Alert,
                span: None,
                at_secs: at,
                attrs: vec![
                    ("detector", detector.into()),
                    ("severity", severity.into()),
                    ("message", format!("{detector} fired").into()),
                ],
            });
        }
        let report = TraceReport::from_snapshot(&snap).unwrap();
        let incidents = report.incidents.as_ref().unwrap();
        assert_eq!(incidents.total, 3);
        assert_eq!(incidents.by_detector["stall"], 2);
        assert_eq!(incidents.by_severity["critical"], 2);
        assert_eq!(incidents.samples.len(), 3);
        let text = report.render();
        assert!(text.contains("incidents: 3 alert(s)"), "{text}");
        assert!(text.contains("by detector: crash_loop 1, stall 2"), "{text}");
        assert!(text.contains("[critical] crash_loop @ 6.000s"), "{text}");
    }

    #[test]
    fn report_rejects_invalid_traces() {
        let mut snap = sample();
        snap.spans[1].parent = Some(9); // forward reference
        assert!(TraceReport::from_snapshot(&snap).is_err());
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let a = TraceReport::from_snapshot(&sample()).unwrap().render();
        let b = TraceReport::from_snapshot(&sample()).unwrap().render();
        assert_eq!(a, b);
        for needle in ["run `pipetune`", "critical path", "retry_overhead", "round   0", "stragglers", "p95"] {
            assert!(a.contains(needle), "render missing {needle}:\n{a}");
        }
    }
}
