//! The paper-claim regression gate.
//!
//! The benchmark harness extracts headline metrics (tuning-time reduction
//! vs the sequential baseline, speedup, energy reduction, final accuracy)
//! from traces into a [`BenchReport`], persisted as stable sorted-key
//! JSON (`BENCH_pipetune.json`). [`check`] compares a candidate report
//! against the committed baseline under a [`GateConfig`] of per-metric
//! [`Tolerance`]s, and CI fails when any gated metric degrades beyond
//! tolerance.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::Value;

/// Schema version stamped into every [`BenchReport`] export.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Which way "better" points for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger values are better (speedup, reduction ratios, accuracy).
    HigherIsBetter,
    /// Smaller values are better (tuning seconds, energy).
    LowerIsBetter,
}

/// A per-metric regression tolerance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Which way "better" points.
    pub direction: Direction,
    /// Maximum tolerated relative change in the *worse* direction before
    /// the gate fails (e.g. `0.05` = 5 %).
    pub rel_tol: f64,
}

impl Tolerance {
    /// A higher-is-better metric with the given relative tolerance.
    pub fn higher(rel_tol: f64) -> Self {
        Tolerance { direction: Direction::HigherIsBetter, rel_tol }
    }

    /// A lower-is-better metric with the given relative tolerance.
    pub fn lower(rel_tol: f64) -> Self {
        Tolerance { direction: Direction::LowerIsBetter, rel_tol }
    }
}

/// The gate's tolerance table.
///
/// Keys match metric names either exactly or as a `.`-separated suffix,
/// so one entry (`speedup_vs_v1`) covers every workload prefix
/// (`lenet_mnist.speedup_vs_v1`, `lstm_news20.speedup_vs_v1`, ...).
/// Metrics without a matching entry are informational: reported but
/// never failing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateConfig {
    /// Tolerances, keyed by metric name or suffix.
    pub tolerances: BTreeMap<String, Tolerance>,
}

impl GateConfig {
    /// The tolerances guarding the paper's headline claims.
    ///
    /// # Example
    ///
    /// ```
    /// use pipetune_insight::GateConfig;
    ///
    /// let config = GateConfig::headline_defaults();
    /// assert!(config.tolerance_for("lenet_mnist.speedup_vs_v1").is_some());
    /// assert!(config.tolerance_for("lenet_mnist.epochs_total").is_none());
    /// ```
    pub fn headline_defaults() -> Self {
        let mut tolerances = BTreeMap::new();
        tolerances.insert("tuning_time_reduction_vs_v1".into(), Tolerance::higher(0.05));
        tolerances.insert("tuning_time_reduction_vs_v2".into(), Tolerance::higher(0.05));
        tolerances.insert("speedup_vs_v1".into(), Tolerance::higher(0.05));
        tolerances.insert("energy_reduction_vs_v1".into(), Tolerance::higher(0.10));
        tolerances.insert("final_accuracy".into(), Tolerance::higher(0.02));
        tolerances.insert("tuning_secs.pipetune".into(), Tolerance::lower(0.05));
        // Epoch-reuse cache headline: a warm (pre-populated) cache must
        // keep tuning measurably faster than the cold run.
        tolerances.insert("warm_speedup".into(), Tolerance::higher(0.05));
        // Multi-tenant headline metrics (per scheduling policy): response
        // times must not degrade.
        tolerances.insert("mean_response_secs".into(), Tolerance::lower(0.05));
        tolerances.insert("p95_response_secs".into(), Tolerance::lower(0.05));
        GateConfig { tolerances }
    }

    /// The tolerances guarding the chaos benchmark (the headline table
    /// plus fault-tolerance bounds): under the pinned
    /// `ServiceFaultPlan::mixed` schedule the service must keep
    /// completing jobs, and shedding, abandonment and recovery overhead
    /// must not grow.
    ///
    /// # Example
    ///
    /// ```
    /// use pipetune_insight::GateConfig;
    ///
    /// let config = GateConfig::chaos_defaults();
    /// assert!(config.tolerance_for("multitenant.fifo.shed_rate").is_some());
    /// assert!(config.tolerance_for("multitenant.fifo.completed_jobs").is_some());
    /// assert!(config.tolerance_for("multitenant.fifo.monitor.alerts_total").is_some());
    /// ```
    pub fn chaos_defaults() -> Self {
        let mut config = Self::headline_defaults();
        // Response times under churn and crashes wobble more than clean
        // runs; widen the headline response tolerances accordingly.
        config.tolerances.insert("mean_response_secs".into(), Tolerance::lower(0.15));
        config.tolerances.insert("p95_response_secs".into(), Tolerance::lower(0.15));
        config.tolerances.insert("shed_rate".into(), Tolerance::lower(0.10));
        config.tolerances.insert("abandoned_rate".into(), Tolerance::lower(0.10));
        config.tolerances.insert("recovery_overhead_secs".into(), Tolerance::lower(0.25));
        config.tolerances.insert("completed_jobs".into(), Tolerance::higher(0.01));
        // Online-monitor incident counts under the pinned chaos schedule:
        // the detectors must keep firing (a collapsing count means the
        // monitor went silently blind, the inverse of a healthy run), with
        // per-detector bands wider than the total because individual
        // detectors are noisier.
        config.tolerances.insert("monitor.alerts_total".into(), Tolerance::higher(0.25));
        config.tolerances.insert("monitor.crash_loop".into(), Tolerance::higher(0.50));
        config.tolerances.insert("monitor.slo_burn".into(), Tolerance::higher(0.50));
        config
    }

    /// The tolerances guarding the wall-clock kernel benchmark
    /// (`bench_kernels`, `BENCH_pipetune.perf.json`).
    ///
    /// Absolute wall-clock throughput depends on the runner, so these
    /// entries gate on metric *presence* (a missing gated metric still
    /// fails) and on catastrophic collapse only: the tolerance bands are
    /// deliberately enormous (a 10× slowdown passes; a vanished or
    /// near-zeroed metric does not). The meaningful speedup floor —
    /// blocked kernels ≥ 2× the naive baselines — is asserted inside
    /// `bench_kernels` itself, where both sides run on the same machine
    /// in the same process.
    ///
    /// # Example
    ///
    /// ```
    /// use pipetune_insight::GateConfig;
    ///
    /// let config = GateConfig::perf_defaults();
    /// assert!(config.tolerance_for("gemm.512x1024x1024.speedup_vs_naive").is_some());
    /// assert!(config.tolerance_for("conv2d.b32_c8_o16_k3_s28.gflops_blocked").is_some());
    /// ```
    pub fn perf_defaults() -> Self {
        let mut tolerances = BTreeMap::new();
        // Presence gates: huge relative bands so runner speed differences
        // never fail CI, but a missing metric (renamed/dropped shape) or a
        // collapse past 10× does.
        tolerances.insert("speedup_vs_naive".into(), Tolerance::higher(10.0));
        tolerances.insert("gflops_blocked".into(), Tolerance::higher(10.0));
        tolerances.insert("gflops_naive".into(), Tolerance::higher(10.0));
        GateConfig { tolerances }
    }

    /// Resolves the tolerance guarding `metric`: exact name first, then
    /// the longest `.`-separated suffix match.
    pub fn tolerance_for(&self, metric: &str) -> Option<&Tolerance> {
        if let Some(t) = self.tolerances.get(metric) {
            return Some(t);
        }
        self.tolerances
            .iter()
            .filter(|(key, _)| metric.ends_with(&format!(".{key}")))
            .max_by_key(|(key, _)| key.len())
            .map(|(_, t)| t)
    }
}

/// A named set of benchmark metrics with a stable JSON form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchReport {
    /// What produced the report (e.g. `bench_headline`).
    pub label: String,
    /// Metric values, keyed by `workload.metric` names (sorted).
    pub metrics: BTreeMap<String, f64>,
}

impl BenchReport {
    /// Serialises to pretty JSON with sorted keys — stable across runs,
    /// machines and worker counts, so the file diffs cleanly in git.
    ///
    /// # Example
    ///
    /// ```
    /// use pipetune_insight::BenchReport;
    ///
    /// let mut report = BenchReport { label: "demo".into(), ..Default::default() };
    /// report.metrics.insert("w.speedup_vs_v1".into(), 2.5);
    /// let text = report.to_json_string();
    /// let back = BenchReport::from_json_str(&text).unwrap();
    /// assert_eq!(back, report);
    /// assert_eq!(back.to_json_string(), text);
    /// ```
    pub fn to_json_string(&self) -> String {
        let mut obj = serde_json::Map::new();
        obj.insert("schema".to_string(), Value::U64(BENCH_SCHEMA_VERSION));
        obj.insert("label".to_string(), Value::String(self.label.clone()));
        let metrics: serde_json::Map<String, Value> =
            self.metrics.iter().map(|(k, v)| (k.clone(), Value::F64(*v))).collect();
        obj.insert("metrics".to_string(), Value::Object(metrics));
        serde_json::to_string_pretty(&Value::Object(obj))
            .expect("bench report serialises infallibly")
    }

    /// Parses a report back from its [`BenchReport::to_json_string`] form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem (bad JSON, wrong schema
    /// version, non-numeric metric).
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("bench report: {e}"))?;
        let schema = value
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("bench report: missing schema version")?;
        if schema != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "bench report: schema {schema} unsupported (expected {BENCH_SCHEMA_VERSION})"
            ));
        }
        let label = value
            .get("label")
            .and_then(Value::as_str)
            .ok_or("bench report: missing label")?
            .to_string();
        let mut metrics = BTreeMap::new();
        let object = value
            .get("metrics")
            .and_then(Value::as_object)
            .ok_or("bench report: missing metrics object")?;
        for (name, metric) in object {
            let v = metric
                .as_f64()
                .ok_or_else(|| format!("bench report: metric {name} is not a number"))?;
            metrics.insert(name.clone(), v);
        }
        Ok(BenchReport { label, metrics })
    }
}

/// One metric's verdict in a gate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or informational).
    Ok,
    /// Changed beyond tolerance in the *better* direction.
    Improved,
    /// Changed beyond tolerance in the *worse* direction — fails the gate.
    Regressed,
    /// Present in the baseline but missing from the candidate — fails.
    Missing,
}

/// One row of a [`GateOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricCheck {
    /// Metric name.
    pub metric: String,
    /// Baseline value, if present.
    pub baseline: Option<f64>,
    /// Candidate value, if present.
    pub current: Option<f64>,
    /// Relative change `(current − baseline) / |baseline|` (absolute
    /// change when the baseline is ~0).
    pub rel_change: f64,
    /// Whether the metric was guarded by a tolerance.
    pub gated: bool,
    /// The verdict.
    pub verdict: Verdict,
}

/// The result of comparing a candidate report against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct GateOutcome {
    /// Per-metric rows, sorted by metric name.
    pub checks: Vec<MetricCheck>,
}

impl GateOutcome {
    /// `true` when no gated metric regressed or went missing.
    pub fn passed(&self) -> bool {
        self.checks
            .iter()
            .all(|c| !matches!(c.verdict, Verdict::Regressed | Verdict::Missing))
    }

    /// Renders the outcome as a deterministic plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for check in &self.checks {
            let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |v| format!("{v:.6}"));
            let verdict = match check.verdict {
                Verdict::Ok => "ok",
                Verdict::Improved => "IMPROVED",
                Verdict::Regressed => "REGRESSED",
                Verdict::Missing => "MISSING",
            };
            let gate = if check.gated { "gated" } else { "info " };
            let _ = writeln!(
                out,
                "  [{gate}] {:<44} {:>14} -> {:>14} ({:+8.3}%)  {verdict}",
                check.metric,
                fmt(check.baseline),
                fmt(check.current),
                100.0 * check.rel_change,
            );
        }
        let _ = writeln!(out, "gate: {}", if self.passed() { "PASS" } else { "FAIL" });
        out
    }
}

/// Compares `current` against `baseline` under `config`.
///
/// Every metric appearing in either report yields one [`MetricCheck`].
/// A gated metric fails when it moved beyond tolerance in its worse
/// direction, or when the baseline has it and the candidate does not.
/// Metrics only in the candidate are informational (they become gated
/// once the baseline is refreshed).
///
/// # Example
///
/// ```
/// use pipetune_insight::{check, BenchReport, GateConfig, Tolerance};
///
/// let mut baseline = BenchReport { label: "seed".into(), ..Default::default() };
/// baseline.metrics.insert("w.speedup_vs_v1".into(), 2.0);
/// let mut current = baseline.clone();
/// let config = GateConfig::headline_defaults();
/// assert!(check(&baseline, &current, &config).passed());
///
/// current.metrics.insert("w.speedup_vs_v1".into(), 1.0); // halved: regression
/// assert!(!check(&baseline, &current, &config).passed());
/// ```
pub fn check(baseline: &BenchReport, current: &BenchReport, config: &GateConfig) -> GateOutcome {
    let names: std::collections::BTreeSet<&String> =
        baseline.metrics.keys().chain(current.metrics.keys()).collect();
    let checks = names
        .into_iter()
        .map(|name| {
            let base = baseline.metrics.get(name).copied();
            let cur = current.metrics.get(name).copied();
            let tolerance = config.tolerance_for(name);
            let rel_change = match (base, cur) {
                (Some(b), Some(c)) if b.abs() > 1e-12 => (c - b) / b.abs(),
                (Some(b), Some(c)) => c - b,
                _ => 0.0,
            };
            let verdict = match (base, cur, tolerance) {
                (Some(_), None, Some(_)) => Verdict::Missing,
                (Some(_), Some(_), Some(t)) => {
                    let worse = match t.direction {
                        Direction::HigherIsBetter => -rel_change,
                        Direction::LowerIsBetter => rel_change,
                    };
                    if worse > t.rel_tol {
                        Verdict::Regressed
                    } else if -worse > t.rel_tol {
                        Verdict::Improved
                    } else {
                        Verdict::Ok
                    }
                }
                _ => Verdict::Ok,
            };
            MetricCheck {
                metric: name.clone(),
                baseline: base,
                current: cur,
                rel_change,
                gated: tolerance.is_some(),
                verdict,
            }
        })
        .collect();
    GateOutcome { checks }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(pairs: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            label: "bench_headline".into(),
            metrics: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn json_round_trip_is_stable_and_sorted() {
        let r = report(&[("b.x", 1.5), ("a.y", -0.25), ("a.tuning_secs.pipetune", 321.0)]);
        let text = r.to_json_string();
        assert!(text.find("\"a.tuning_secs.pipetune\"").unwrap() < text.find("\"b.x\"").unwrap());
        let back = BenchReport::from_json_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn from_json_rejects_bad_schema_and_values() {
        assert!(BenchReport::from_json_str("nope").is_err());
        assert!(BenchReport::from_json_str(r#"{"schema": 9, "label": "x", "metrics": {}}"#)
            .is_err());
        assert!(BenchReport::from_json_str(
            r#"{"schema": 1, "label": "x", "metrics": {"m": "high"}}"#
        )
        .is_err());
    }

    #[test]
    fn suffix_tolerances_cover_workload_prefixes() {
        let config = GateConfig::headline_defaults();
        assert!(config.tolerance_for("speedup_vs_v1").is_some());
        assert!(config.tolerance_for("lstm_news20.speedup_vs_v1").is_some());
        assert!(config.tolerance_for("lenet_mnist.tuning_secs.pipetune").is_some());
        assert!(config.tolerance_for("lenet_mnist.tuning_secs.tune_v1").is_none());
        assert!(config.tolerance_for("notspeedup_vs_v1").is_none());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let config = GateConfig::headline_defaults();
        let base = report(&[("w.speedup_vs_v1", 2.0), ("w.tuning_secs.pipetune", 100.0)]);

        // 4 % faster tuning: inside the 5 % band.
        let ok = report(&[("w.speedup_vs_v1", 2.0), ("w.tuning_secs.pipetune", 96.0)]);
        assert!(check(&base, &ok, &config).passed());

        // Tuning time degraded 10 %: the gate fails.
        let slow = report(&[("w.speedup_vs_v1", 2.0), ("w.tuning_secs.pipetune", 110.0)]);
        let outcome = check(&base, &slow, &config);
        assert!(!outcome.passed());
        assert!(outcome.render().contains("REGRESSED"));

        // Large improvement is flagged but passes.
        let fast = report(&[("w.speedup_vs_v1", 3.0), ("w.tuning_secs.pipetune", 100.0)]);
        let outcome = check(&base, &fast, &config);
        assert!(outcome.passed());
        assert!(outcome.render().contains("IMPROVED"));
    }

    #[test]
    fn missing_gated_metric_fails_new_metrics_are_informational() {
        let config = GateConfig::headline_defaults();
        let base = report(&[("w.speedup_vs_v1", 2.0)]);
        let gone = report(&[]);
        let outcome = check(&base, &gone, &config);
        assert!(!outcome.passed());
        assert!(outcome.checks.iter().any(|c| c.verdict == Verdict::Missing));

        let extra = report(&[("w.speedup_vs_v1", 2.0), ("w.new_metric", 1.0)]);
        assert!(check(&base, &extra, &config).passed());
    }

    #[test]
    fn ungated_metrics_never_fail() {
        let config = GateConfig::headline_defaults();
        let base = report(&[("w.epochs_total", 100.0)]);
        let wild = report(&[("w.epochs_total", 5.0)]);
        assert!(check(&base, &wild, &config).passed());
    }
}
