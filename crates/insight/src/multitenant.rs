//! Multi-tenant response-time analytics.
//!
//! A `pipetune-service` run yields one response time (completion −
//! arrival) per admitted job. These helpers turn that population into the
//! per-policy summary the benchmark harness persists in a
//! [`crate::BenchReport`]: mean, nearest-rank percentiles (computed by the
//! embedded [`pipetune_tsdb`] selectors, the same path the critical-path
//! report uses) and the maximum. Rejected jobs carry `NaN` response times
//! and are excluded, so the caller can pass a service outcome's records
//! straight through.

use std::collections::BTreeMap;

use pipetune_cluster::ServiceFaultReport;
use pipetune_tsdb::{Aggregate, Database, Point, Query};

/// Response-time summary over one service run's admitted jobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseStats {
    /// Jobs with a finite response time (admitted and completed).
    pub jobs: usize,
    /// Mean response time, seconds.
    pub mean_secs: f64,
    /// Median response time, seconds (nearest rank).
    pub p50_secs: f64,
    /// 95th-percentile response time, seconds (nearest rank).
    pub p95_secs: f64,
    /// 99th-percentile response time, seconds (nearest rank).
    pub p99_secs: f64,
    /// Worst response time, seconds.
    pub max_secs: f64,
}

/// Summarises a population of per-job response times. Non-finite entries
/// (rejected jobs) are dropped; `None` when nothing finite remains.
///
/// # Example
///
/// ```
/// use pipetune_insight::response_stats;
///
/// let stats = response_stats(&[10.0, 30.0, f64::NAN, 20.0]).unwrap();
/// assert_eq!(stats.jobs, 3);
/// assert_eq!(stats.mean_secs, 20.0);
/// assert_eq!(stats.p50_secs, 20.0);
/// assert_eq!(stats.max_secs, 30.0);
/// assert!(response_stats(&[f64::NAN]).is_none());
/// ```
pub fn response_stats(responses_secs: &[f64]) -> Option<ResponseStats> {
    let finite: Vec<f64> = responses_secs.iter().copied().filter(|r| r.is_finite()).collect();
    if finite.is_empty() {
        return None;
    }
    let db = Database::new();
    for (i, r) in finite.iter().enumerate() {
        let _ = db.write(Point::new("response_secs", i as u64).field("secs", *r));
    }
    let query = Query::measurement("response_secs");
    let get = |agg| db.aggregate(&query, "secs", agg).ok().flatten();
    Some(ResponseStats {
        jobs: finite.len(),
        mean_secs: get(Aggregate::Mean)?,
        p50_secs: get(Aggregate::P50)?,
        p95_secs: get(Aggregate::P95)?,
        p99_secs: get(Aggregate::P99)?,
        max_secs: get(Aggregate::Max)?,
    })
}

/// Builds the `BenchReport` metric entries for one service run, keyed
/// `"{prefix}.{stat}"` (the harness uses `multitenant.{policy}` prefixes,
/// so the gate's `mean_response_secs` / `p95_response_secs` suffix
/// tolerances cover every policy). Empty when no job completed.
///
/// # Example
///
/// ```
/// use pipetune_insight::multitenant_metrics;
///
/// let m = multitenant_metrics("multitenant.fifo", &[10.0, 20.0]);
/// assert_eq!(m["multitenant.fifo.jobs"], 2.0);
/// assert_eq!(m["multitenant.fifo.mean_response_secs"], 15.0);
/// assert!(multitenant_metrics("multitenant.fifo", &[]).is_empty());
/// ```
pub fn multitenant_metrics(prefix: &str, responses_secs: &[f64]) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    if let Some(stats) = response_stats(responses_secs) {
        let mut put = |name: &str, value: f64| {
            metrics.insert(format!("{prefix}.{name}"), value);
        };
        put("jobs", stats.jobs as f64);
        put("mean_response_secs", stats.mean_secs);
        put("p50_response_secs", stats.p50_secs);
        put("p95_response_secs", stats.p95_secs);
        put("p99_response_secs", stats.p99_secs);
        put("max_response_secs", stats.max_secs);
    }
    metrics
}

/// Builds the `BenchReport` metric entries describing how one service run
/// weathered its service-level fault schedule, keyed `"{prefix}.{stat}"`
/// (same prefixes as [`multitenant_metrics`], so the chaos gate's suffix
/// tolerances cover every policy). Rates are over `submitted_jobs`
/// (0 when nothing was submitted); `recovery_overhead_secs` is the total
/// crash-lost work plus resubmission backoff.
///
/// # Example
///
/// ```
/// use pipetune_cluster::ServiceFaultReport;
/// use pipetune_insight::service_fault_metrics;
///
/// let mut report = ServiceFaultReport::default();
/// report.jobs_shed = 1;
/// report.job_crashes = 2;
/// report.lost_service_secs = 40.0;
/// report.backoff_secs = 10.0;
/// let m = service_fault_metrics("multitenant.fifo", &report, 4, 3);
/// assert_eq!(m["multitenant.fifo.shed_rate"], 0.25);
/// assert_eq!(m["multitenant.fifo.completed_jobs"], 3.0);
/// assert_eq!(m["multitenant.fifo.recovery_overhead_secs"], 50.0);
/// ```
pub fn service_fault_metrics(
    prefix: &str,
    report: &ServiceFaultReport,
    submitted_jobs: usize,
    completed_jobs: usize,
) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let mut put = |name: &str, value: f64| {
        metrics.insert(format!("{prefix}.{name}"), value);
    };
    let rate = |count: u64| {
        if submitted_jobs == 0 { 0.0 } else { count as f64 / submitted_jobs as f64 }
    };
    put("completed_jobs", completed_jobs as f64);
    put("shed_rate", rate(report.jobs_shed));
    put("abandoned_rate", rate(report.jobs_abandoned));
    put("job_crashes", report.job_crashes as f64);
    put("node_churn_events", (report.node_leaves + report.node_joins) as f64);
    put("lost_service_secs", report.lost_service_secs);
    put("recovery_overhead_secs", report.lost_service_secs + report.backoff_secs);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computed_values() {
        let responses: Vec<f64> = (1..=100).map(f64::from).collect();
        let stats = response_stats(&responses).unwrap();
        assert_eq!(stats.jobs, 100);
        assert_eq!(stats.mean_secs, 50.5);
        assert_eq!(stats.p50_secs, 50.0);
        assert_eq!(stats.p95_secs, 95.0);
        assert_eq!(stats.p99_secs, 99.0);
        assert_eq!(stats.max_secs, 100.0);
    }

    #[test]
    fn rejected_jobs_nan_responses_are_excluded() {
        let stats = response_stats(&[f64::NAN, 4.0, f64::NAN, 8.0]).unwrap();
        assert_eq!(stats.jobs, 2);
        assert_eq!(stats.mean_secs, 6.0);
        assert!(response_stats(&[]).is_none());
        assert!(response_stats(&[f64::NAN, f64::INFINITY]).is_none());
    }

    #[test]
    fn metric_keys_carry_the_policy_prefix() {
        let m = multitenant_metrics("multitenant.processor_sharing", &[5.0, 15.0, 40.0]);
        assert_eq!(m.len(), 6);
        assert_eq!(m["multitenant.processor_sharing.jobs"], 3.0);
        assert_eq!(m["multitenant.processor_sharing.mean_response_secs"], 20.0);
        assert_eq!(m["multitenant.processor_sharing.max_response_secs"], 40.0);
        // The gate's suffix tolerances cover these names.
        let config = crate::GateConfig::headline_defaults();
        assert!(config.tolerance_for("multitenant.processor_sharing.mean_response_secs").is_some());
        assert!(config.tolerance_for("multitenant.processor_sharing.p95_response_secs").is_some());
        assert!(config.tolerance_for("multitenant.processor_sharing.jobs").is_none());
    }

    #[test]
    fn fault_metrics_cover_every_policy_prefix_under_the_chaos_gate() {
        let report = ServiceFaultReport {
            node_leaves: 2,
            node_joins: 1,
            jobs_shed: 1,
            jobs_abandoned: 1,
            job_crashes: 3,
            lost_service_secs: 100.0,
            backoff_secs: 60.0,
            ..Default::default()
        };
        let m = service_fault_metrics("multitenant.shortest_remaining", &report, 8, 5);
        assert_eq!(m.len(), 7);
        assert_eq!(m["multitenant.shortest_remaining.shed_rate"], 0.125);
        assert_eq!(m["multitenant.shortest_remaining.abandoned_rate"], 0.125);
        assert_eq!(m["multitenant.shortest_remaining.node_churn_events"], 3.0);
        assert_eq!(m["multitenant.shortest_remaining.recovery_overhead_secs"], 160.0);
        let config = crate::GateConfig::chaos_defaults();
        for key in m.keys() {
            let gated = config.tolerance_for(key).is_some();
            let informational =
                key.ends_with(".job_crashes") || key.ends_with(".node_churn_events")
                    || key.ends_with(".lost_service_secs");
            assert_eq!(gated, !informational, "{key}");
        }
    }

    #[test]
    fn zero_submissions_yield_zero_rates() {
        let report = ServiceFaultReport::default();
        let m = service_fault_metrics("p", &report, 0, 0);
        assert_eq!(m["p.shed_rate"], 0.0);
        assert_eq!(m["p.abandoned_rate"], 0.0);
    }
}
