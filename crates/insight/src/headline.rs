//! Headline-metric extraction: from traces to the paper's claims.
//!
//! The paper's headline numbers (§7) are tuning-time reduction vs the
//! sequential baseline, end-to-end speedup, energy reduction and final
//! accuracy. These helpers compute them from the telemetry traces of a
//! PipeTune run and the two baseline tuners, producing the metric map a
//! [`crate::BenchReport`] persists.

use std::collections::BTreeMap;

use pipetune_telemetry::{AttrValue, SpanKind, TelemetrySnapshot};

/// Total simulated tuning time: the summed extent of every `tuning_run`
/// span in the trace. Runs count whether they are top-level or nested
/// under a service's `job` span — the taxonomy never nests one
/// `tuning_run` inside another, so there is no double counting.
pub fn tuning_secs(snapshot: &TelemetrySnapshot) -> f64 {
    snapshot
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::TuningRun)
        .filter(|s| s.start_secs.is_finite() && s.end_secs.is_finite())
        .map(|s| s.end_secs - s.start_secs)
        .sum()
}

/// Total simulated energy: the `energy_j` attribute summed over every
/// epoch span (crash-recovery waste is charged there by the executor).
pub fn total_energy_j(snapshot: &TelemetrySnapshot) -> f64 {
    snapshot
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Epoch)
        .filter_map(|s| {
            s.attrs
                .iter()
                .find(|(k, _)| *k == "energy_j")
                .and_then(|(_, v)| v.as_field())
        })
        .sum()
}

/// The best trial accuracy recorded in the trace (the `accuracy`
/// attribute of the highest-`score` trial span), if any trial finished.
pub fn best_accuracy(snapshot: &TelemetrySnapshot) -> Option<f64> {
    snapshot
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Trial)
        .filter_map(|s| {
            let field = |key: &str| {
                s.attrs.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
                    AttrValue::F64(f) => Some(*f),
                    other => other.as_field(),
                })
            };
            Some((field("score")?, field("accuracy")?))
        })
        .max_by(|(a, _), (b, _)| a.total_cmp(b))
        .map(|(_, accuracy)| accuracy)
}

/// Computes the headline metric map for one workload from the traces of
/// the two baselines and PipeTune.
///
/// Keys are prefixed `"{workload_key}."`; ratio metrics are only emitted
/// when their denominators are positive, so a degenerate trace produces
/// a smaller map rather than NaNs (which would not survive the
/// sorted-key JSON round trip).
///
/// # Example
///
/// ```
/// use pipetune_insight::headline_metrics;
/// use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle};
///
/// let run = |label: &str, secs: f64| {
///     let t = TelemetryHandle::enabled();
///     let span = t.open_span(SpanId::NONE, SpanKind::TuningRun, label, 0.0, vec![]);
///     t.close_span(span, secs);
///     t.snapshot().unwrap()
/// };
/// let metrics = headline_metrics(
///     "lenet_mnist",
///     &run("tune_v1", 100.0),
///     &run("tune_v2", 60.0),
///     &run("pipetune", 40.0),
/// );
/// assert_eq!(metrics["lenet_mnist.speedup_vs_v1"], 2.5);
/// assert_eq!(metrics["lenet_mnist.tuning_time_reduction_vs_v1"], 0.6);
/// ```
pub fn headline_metrics(
    workload_key: &str,
    tune_v1: &TelemetrySnapshot,
    tune_v2: &TelemetrySnapshot,
    pipetune: &TelemetrySnapshot,
) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let mut put = |name: &str, value: f64| {
        if value.is_finite() {
            metrics.insert(format!("{workload_key}.{name}"), value);
        }
    };

    let v1 = tuning_secs(tune_v1);
    let v2 = tuning_secs(tune_v2);
    let pt = tuning_secs(pipetune);
    put("tuning_secs.tune_v1", v1);
    put("tuning_secs.tune_v2", v2);
    put("tuning_secs.pipetune", pt);
    if v1 > 0.0 {
        put("tuning_time_reduction_vs_v1", 1.0 - pt / v1);
        put("speedup_vs_v1", v1 / pt);
    }
    if v2 > 0.0 {
        put("tuning_time_reduction_vs_v2", 1.0 - pt / v2);
    }

    let v1_energy = total_energy_j(tune_v1);
    let pt_energy = total_energy_j(pipetune);
    put("energy_j.tune_v1", v1_energy);
    put("energy_j.pipetune", pt_energy);
    if v1_energy > 0.0 {
        put("energy_reduction_vs_v1", 1.0 - pt_energy / v1_energy);
    }

    if let Some(accuracy) = best_accuracy(pipetune) {
        put("final_accuracy", accuracy);
    }
    metrics
}

/// Computes the epoch-reuse cache headline for one workload: a cold run
/// (empty cache) against a warm rerun over the cache the cold run filled.
///
/// Keys are prefixed `"cache.{workload_key}."`. `warm_speedup`
/// (`cold_secs / warm_secs`, the gated metric) is only emitted when both
/// durations are positive, mirroring [`headline_metrics`]' NaN hygiene.
///
/// # Example
///
/// ```
/// use pipetune_insight::cache_speedup_metrics;
///
/// let m = cache_speedup_metrics("lenet_mnist", 100.0, 80.0, 20.0);
/// assert_eq!(m["cache.lenet_mnist.warm_speedup"], 1.25);
/// assert_eq!(m["cache.lenet_mnist.saved_secs"], 20.0);
/// ```
pub fn cache_speedup_metrics(
    workload_key: &str,
    cold_secs: f64,
    warm_secs: f64,
    saved_secs: f64,
) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let mut put = |name: &str, value: f64| {
        if value.is_finite() {
            metrics.insert(format!("cache.{workload_key}.{name}"), value);
        }
    };
    put("cold_secs", cold_secs);
    put("warm_secs", warm_secs);
    put("saved_secs", saved_secs);
    if cold_secs > 0.0 && warm_secs > 0.0 {
        put("warm_speedup", cold_secs / warm_secs);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_telemetry::{SpanId, TelemetryHandle};

    fn traced_run(label: &str, secs: f64, energy: f64, accuracy: f64) -> TelemetrySnapshot {
        let t = TelemetryHandle::enabled();
        let run = t.open_span(SpanId::NONE, SpanKind::TuningRun, label, 0.0, vec![]);
        let rung = t.open_span(run, SpanKind::Rung, "round 0", 0.0, vec![]);
        let batch = t.open_span(rung, SpanKind::Batch, "batch of 1", 0.0, vec![]);
        let trial = t.open_span(
            batch,
            SpanKind::Trial,
            "trial 0",
            0.0,
            vec![("accuracy", accuracy.into()), ("score", accuracy.into())],
        );
        let epoch = t.open_span(
            trial,
            SpanKind::Epoch,
            "epoch 1 (tuned)",
            0.0,
            vec![("energy_j", energy.into())],
        );
        t.close_span(epoch, secs);
        t.close_span(trial, secs);
        t.close_span(batch, secs);
        t.close_span(rung, secs);
        t.close_span(run, secs);
        t.snapshot().unwrap()
    }

    #[test]
    fn extracts_time_energy_and_accuracy() {
        let v1 = traced_run("tune_v1", 200.0, 1000.0, 0.90);
        let v2 = traced_run("tune_v2", 100.0, 700.0, 0.91);
        let pt = traced_run("pipetune", 50.0, 400.0, 0.92);
        let m = headline_metrics("w", &v1, &v2, &pt);
        assert_eq!(m["w.tuning_secs.pipetune"], 50.0);
        assert_eq!(m["w.speedup_vs_v1"], 4.0);
        assert_eq!(m["w.tuning_time_reduction_vs_v1"], 0.75);
        assert_eq!(m["w.tuning_time_reduction_vs_v2"], 0.5);
        assert_eq!(m["w.energy_reduction_vs_v1"], 0.6);
        assert_eq!(m["w.final_accuracy"], 0.92);
    }

    #[test]
    fn degenerate_traces_omit_ratio_metrics() {
        let empty = TelemetrySnapshot::default();
        let m = headline_metrics("w", &empty, &empty, &empty);
        assert!(!m.contains_key("w.speedup_vs_v1"));
        assert!(!m.contains_key("w.final_accuracy"));
        assert_eq!(m["w.tuning_secs.pipetune"], 0.0);
    }

    #[test]
    fn tuning_secs_counts_runs_nested_under_service_jobs() {
        let t = TelemetryHandle::enabled();
        let svc = t.open_span(SpanId::NONE, SpanKind::Service, "service fifo", 0.0, vec![]);
        let job = t.open_span(svc, SpanKind::Job, "job 0", 0.0, vec![]);
        let nested = t.open_span(job, SpanKind::TuningRun, "pipetune", 0.0, vec![]);
        t.close_span(nested, 40.0);
        let top = t.open_span(SpanId::NONE, SpanKind::TuningRun, "pipetune", 0.0, vec![]);
        t.close_span(top, 2.0);
        t.close_span(job, 40.0);
        t.close_span(svc, 40.0);
        assert_eq!(tuning_secs(&t.snapshot().unwrap()), 42.0);
    }

    #[test]
    fn best_accuracy_follows_the_highest_score() {
        let t = TelemetryHandle::enabled();
        let run = t.open_span(SpanId::NONE, SpanKind::TuningRun, "pipetune", 0.0, vec![]);
        let rung = t.open_span(run, SpanKind::Rung, "round 0", 0.0, vec![]);
        let batch = t.open_span(rung, SpanKind::Batch, "batch of 2", 0.0, vec![]);
        for (score, accuracy) in [(0.5, 0.80), (0.9, 0.95)] {
            let trial = t.open_span(
                batch,
                SpanKind::Trial,
                "trial",
                0.0,
                vec![("accuracy", accuracy.into()), ("score", score.into())],
            );
            t.close_span(trial, 1.0);
        }
        t.close_span(batch, 1.0);
        t.close_span(rung, 1.0);
        t.close_span(run, 1.0);
        assert_eq!(best_accuracy(&t.snapshot().unwrap()), Some(0.95));
    }
}
