//! Offline trace analytics for the PipeTune reproduction.
//!
//! The telemetry layer (PR 3) records what the tuning pipeline *did*; this
//! crate answers what the trace *means*. It consumes the deterministic JSON
//! traces exported by [`pipetune_telemetry::TelemetrySnapshot`] and offers
//! three tools:
//!
//! * **Critical-path reports** ([`TraceReport`]) — per-phase time
//!   attribution (profile / probe / tuned / fixed / retry overhead),
//!   per-rung slot utilization and idle time, straggler ranking and the
//!   critical path through each tuning run.
//! * **Trace diffs** ([`TraceDiff`]) — compare two runs: per-phase deltas,
//!   changed span/event structure and metric counters.
//! * **The regression gate** ([`BenchReport`], [`GateConfig`], [`check`])
//!   — extract the paper's headline claims (tuning-time reduction vs the
//!   sequential baseline, speedup, energy reduction, final accuracy) from
//!   traces, persist them in a stable sorted-key JSON schema and fail a
//!   build when a metric degrades beyond tolerance.
//! * **Multi-tenant summaries** ([`response_stats`],
//!   [`multitenant_metrics`], [`service_fault_metrics`]) — per-job
//!   response-time percentiles and fault-tolerance rates for a
//!   `pipetune-service` run, feeding the report's `multitenant.{policy}.*`
//!   gated section (clean runs via `GateConfig::headline_defaults`, the
//!   chaos benchmark via `GateConfig::chaos_defaults`).
//!
//! Everything here is a **pure function of the trace**: no wall clock, no
//! I/O, no randomness. Because the input traces are byte-identical for
//! every executor worker count, so is every report, diff and gate verdict.
//!
//! # Example
//!
//! ```
//! use pipetune_insight::TraceReport;
//! use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle};
//!
//! let telemetry = TelemetryHandle::enabled();
//! let run = telemetry.open_span(
//!     SpanId::NONE,
//!     SpanKind::TuningRun,
//!     "pipetune",
//!     0.0,
//!     vec![("workload", "lenet/mnist".into()), ("parallel_slots", 4u64.into())],
//! );
//! telemetry.close_span(run, 10.0);
//!
//! let snap = telemetry.snapshot().unwrap();
//! let report = TraceReport::from_snapshot(&snap).unwrap();
//! assert_eq!(report.runs.len(), 1);
//! assert_eq!(report.runs[0].workload, "lenet/mnist");
//! assert!(report.render().contains("pipetune"));
//! ```

#![warn(missing_docs)]

mod diff;
mod gate;
mod headline;
mod multitenant;
mod report;

pub use diff::TraceDiff;
pub use gate::{
    check, BenchReport, Direction, GateConfig, GateOutcome, MetricCheck, Tolerance, Verdict,
};
pub use headline::{
    best_accuracy, cache_speedup_metrics, headline_metrics, total_energy_j, tuning_secs,
};
pub use multitenant::{
    multitenant_metrics, response_stats, service_fault_metrics, ResponseStats,
};
pub use report::{
    DurationStats, IncidentSummary, PhaseBreakdown, RunReport, RungReport, Straggler, TraceReport,
};
