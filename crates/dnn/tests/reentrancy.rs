//! Re-entrancy of the training entry points.
//!
//! The parallel trial executor trains several models at once, each on its
//! own OS thread with its own seeded RNG. That is only sound if the
//! framework keeps *all* training state inside the model/dataset/rng the
//! caller passes in — no globals, no thread-locals, no hidden caches. These
//! tests pin that contract: every substrate type is `Send`, and training the
//! same seeded model concurrently with unrelated work produces bit-identical
//! weights and metrics to training it alone.

use pipetune_dnn::{Dataset, EpochMetrics, Features, LeNet5, Model, TextCnn, TrainConfig};
use pipetune_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_send<T: Send>() {}

#[test]
fn substrate_types_are_send() {
    // Compile-time: a worker thread may take ownership of any of these.
    assert_send::<LeNet5>();
    assert_send::<TextCnn>();
    assert_send::<pipetune_dnn::LstmClassifier>();
    assert_send::<Dataset>();
    assert_send::<TrainConfig>();
    assert_send::<StdRng>();
}

fn image_dataset(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let images = Tensor::randn(&[24, 1, 16, 16], 1.0, &mut rng);
    let labels: Vec<usize> = (0..24).map(|i| i % 2).collect();
    Dataset::new(Features::Images(images), labels, 2).unwrap()
}

/// Trains a fresh seeded LeNet for `epochs` and returns its per-epoch
/// metrics plus the final evaluation accuracy.
fn train_lenet(seed: u64, epochs: usize) -> (Vec<EpochMetrics>, f32) {
    let data = image_dataset(seed ^ 0xDA7A);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = LeNet5::with_input_size(16, 2, 0.1, &mut rng).unwrap();
    let cfg = TrainConfig { batch_size: 8, learning_rate: 0.05, ..TrainConfig::default() };
    let metrics: Vec<EpochMetrics> =
        (0..epochs).map(|_| model.train_epoch(&data, &cfg, &mut rng).unwrap()).collect();
    let acc = model.evaluate(&data).unwrap();
    (metrics, acc)
}

#[test]
fn concurrent_training_is_bit_identical_to_sequential() {
    // Reference: three seeds trained alone, one after another.
    let alone: Vec<_> = [1u64, 2, 3].iter().map(|&s| train_lenet(s, 3)).collect();

    // Same three trainings racing on three OS threads.
    let raced: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            [1u64, 2, 3].iter().map(|&s| scope.spawn(move || train_lenet(s, 3))).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for ((seq_metrics, seq_acc), (par_metrics, par_acc)) in alone.iter().zip(&raced) {
        assert_eq!(seq_acc, par_acc, "evaluation must not depend on co-running trainings");
        assert_eq!(seq_metrics.len(), par_metrics.len());
        for (a, b) in seq_metrics.iter().zip(par_metrics) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "loss must be bit-identical");
            assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
        }
    }
}

#[test]
fn interleaved_models_do_not_share_state() {
    // Two different models trained on the same thread, steps interleaved,
    // must match two models trained back to back — catches accidental
    // shared statics keyed on "the current model".
    let data = image_dataset(9);
    let cfg = TrainConfig { batch_size: 8, learning_rate: 0.05, ..TrainConfig::default() };

    let mut rng_a = StdRng::seed_from_u64(10);
    let mut rng_b = StdRng::seed_from_u64(11);
    let mut a = LeNet5::with_input_size(16, 2, 0.0, &mut rng_a).unwrap();
    let mut b = LeNet5::with_input_size(16, 2, 0.0, &mut rng_b).unwrap();
    let mut interleaved = Vec::new();
    for _ in 0..2 {
        interleaved.push(a.train_epoch(&data, &cfg, &mut rng_a).unwrap().loss);
        interleaved.push(b.train_epoch(&data, &cfg, &mut rng_b).unwrap().loss);
    }

    let mut rng_a = StdRng::seed_from_u64(10);
    let mut rng_b = StdRng::seed_from_u64(11);
    let mut a2 = LeNet5::with_input_size(16, 2, 0.0, &mut rng_a).unwrap();
    let mut b2 = LeNet5::with_input_size(16, 2, 0.0, &mut rng_b).unwrap();
    let mut sequential = Vec::new();
    let mut b_losses = Vec::new();
    for _ in 0..2 {
        sequential.push(a2.train_epoch(&data, &cfg, &mut rng_a).unwrap().loss);
    }
    for _ in 0..2 {
        b_losses.push(b2.train_epoch(&data, &cfg, &mut rng_b).unwrap().loss);
    }

    assert_eq!(interleaved[0].to_bits(), sequential[0].to_bits());
    assert_eq!(interleaved[2].to_bits(), sequential[1].to_bits());
    assert_eq!(interleaved[1].to_bits(), b_losses[0].to_bits());
    assert_eq!(interleaved[3].to_bits(), b_losses[1].to_bits());
}
