//! From-scratch CPU deep-learning framework for the PipeTune reproduction.
//!
//! The paper trains LeNet-5, a text CNN and an LSTM through BigDL. This crate
//! provides the equivalent substrate in pure Rust: trainable layers
//! (dense, 2-D convolution, pooling, dropout, embedding, LSTM), SGD with
//! momentum, softmax cross-entropy, and the three paper models. Training is
//! *real* — gradients are backpropagated and accuracy genuinely responds to
//! the hyperparameters PipeTune tunes (batch size, dropout, embedding
//! dimensions, learning rate, epochs).
//!
//! Every stochastic choice (weight init, shuffling, dropout masks) flows from
//! an explicit seed, so tuning experiments are reproducible.
//!
//! # Example
//!
//! ```
//! use pipetune_dnn::{Dataset, Features, LeNet5, Model, TrainConfig};
//! use pipetune_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), pipetune_dnn::DnnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! // 8 random 16x16 one-channel "images", 2 classes.
//! let images = Tensor::randn(&[8, 1, 16, 16], 1.0, &mut rng);
//! let labels = vec![0, 1, 0, 1, 0, 1, 0, 1];
//! let data = Dataset::new(Features::Images(images), labels, 2)?;
//! let mut model = LeNet5::with_input_size(16, 2, 0.0, &mut rng)?;
//! let cfg = TrainConfig { batch_size: 4, learning_rate: 0.05, ..TrainConfig::default() };
//! let metrics = model.train_epoch(&data, &cfg, &mut rng)?;
//! assert!(metrics.loss.is_finite());
//! # Ok(())
//! # }
//! ```

mod confusion;
mod dataset;
mod gradcheck;
mod error;
mod layers;
mod loss;
mod lstm;
mod metrics;
mod models;
mod optim;
mod param;

pub use confusion::ConfusionMatrix;
pub use dataset::{BatchIndices, Dataset, Features};
pub use error::DnnError;
pub use gradcheck::{check_gradient, GradCheckReport};
pub use layers::{Conv2d, Dense, Dropout, Embedding, Flatten, MaxPool2d, Relu};
pub use loss::softmax_cross_entropy;
pub use lstm::LstmCell;
pub use metrics::EpochMetrics;
pub use models::{LeNet5, LstmClassifier, Model, ModelKind, ModelSignature, TextCnn};
pub use optim::{Adam, Sgd, TrainConfig};
pub use param::Param;
