//! Numerical gradient checking.
//!
//! Every backward pass in this crate is hand-derived; this module provides
//! the standard central-difference harness to validate them — as a public
//! utility, so downstream users extending the framework with new layers can
//! check their own gradients the same way.

use pipetune_tensor::Tensor;

/// Result of comparing one analytic gradient against central differences.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest relative error observed across the probed coordinates.
    pub max_rel_error: f64,
    /// Coordinate index of the worst error.
    pub worst_index: usize,
    /// Number of coordinates probed.
    pub probed: usize,
}

impl GradCheckReport {
    /// Returns `true` when the analytic gradient is within `tol` relative
    /// error everywhere probed.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_error <= tol
    }
}

/// Checks `analytic_grad` against central differences of `f` at `x`.
///
/// `f` must be a pure function of its tensor argument (same output for the
/// same input). `probes` selects how many evenly spaced coordinates to test;
/// probing everything is O(2·len) evaluations of `f`.
///
/// # Panics
///
/// Panics when `analytic_grad` is shaped differently from `x` or `probes`
/// is zero.
pub fn check_gradient<F>(
    f: F,
    x: &Tensor,
    analytic_grad: &Tensor,
    eps: f32,
    probes: usize,
) -> GradCheckReport
where
    F: Fn(&Tensor) -> f32,
{
    assert_eq!(
        x.shape(),
        analytic_grad.shape(),
        "gradient must be shaped like the input"
    );
    assert!(probes > 0, "at least one probe required");
    let n = x.len();
    let step = (n / probes.min(n)).max(1);
    let mut max_rel_error = 0.0f64;
    let mut worst_index = 0usize;
    let mut probed = 0usize;
    for i in (0..n).step_by(step) {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let numeric = f64::from(f(&xp) - f(&xm)) / (2.0 * f64::from(eps));
        let analytic = f64::from(analytic_grad.data()[i]);
        let scale = numeric.abs().max(analytic.abs()).max(1e-6);
        let rel = (numeric - analytic).abs() / scale;
        if rel > max_rel_error {
            max_rel_error = rel;
            worst_index = i;
        }
        probed += 1;
    }
    GradCheckReport { max_rel_error, worst_index, probed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{softmax_cross_entropy, Dense};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_a_correct_quadratic_gradient() {
        // f(x) = Σ x², ∇f = 2x.
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[4]).unwrap();
        let grad = x.scale(2.0);
        let report = check_gradient(|t| t.norm_sq(), &x, &grad, 1e-3, 4);
        assert!(report.passes(1e-3), "{report:?}");
        assert_eq!(report.probed, 4);
    }

    #[test]
    fn flags_a_wrong_gradient() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0], &[4]).unwrap();
        let wrong = x.scale(3.0); // should be 2x
        let report = check_gradient(|t| t.norm_sq(), &x, &wrong, 1e-3, 4);
        assert!(!report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn validates_the_dense_layer_end_to_end() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn(&[5, 4], 1.0, &mut rng);
        let labels = [0usize, 2, 1, 0, 2];
        // Analytic input gradient through dense + cross-entropy.
        let logits = layer.forward(&x, true).unwrap();
        let (_, grad_logits) = softmax_cross_entropy(&logits, &labels).unwrap();
        let grad_x = layer.backward(&grad_logits).unwrap();
        // Numeric check: loss as a pure function of the input.
        let probe_layer = std::cell::RefCell::new(layer.clone());
        let report = check_gradient(
            |t| {
                let logits = probe_layer.borrow_mut().forward(t, false).unwrap();
                softmax_cross_entropy(&logits, &labels).unwrap().0
            },
            &x,
            &grad_x,
            1e-2,
            10,
        );
        assert!(report.passes(0.05), "{report:?}");
    }

    #[test]
    #[should_panic(expected = "shaped like")]
    fn rejects_mismatched_shapes() {
        let x = Tensor::zeros(&[4]);
        let g = Tensor::zeros(&[3]);
        let _ = check_gradient(|t| t.sum(), &x, &g, 1e-3, 2);
    }
}
