/// Metrics produced by one training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochMetrics {
    /// Mean training loss over all mini-batches.
    pub loss: f32,
    /// Training accuracy over the epoch (fraction in `[0, 1]`).
    pub accuracy: f32,
    /// Number of mini-batch iterations executed (the paper's `N`-iteration
    /// SGD sync cadence; feeds the cluster cost model).
    pub iterations: usize,
    /// Number of examples processed.
    pub examples: usize,
}

impl EpochMetrics {
    /// Folds per-batch results into running totals.
    pub fn accumulate(&mut self, batch_loss: f32, correct: usize, batch_len: usize) {
        // Store sums; `finalize` turns them into means.
        self.loss += batch_loss * batch_len as f32;
        self.accuracy += correct as f32;
        self.iterations += 1;
        self.examples += batch_len;
    }

    /// Converts accumulated sums into means. Idempotent only once.
    pub fn finalize(mut self) -> Self {
        if self.examples > 0 {
            self.loss /= self.examples as f32;
            self.accuracy /= self.examples as f32;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_then_finalize_computes_means() {
        let mut m = EpochMetrics::default();
        m.accumulate(2.0, 3, 4); // loss sum 8, correct 3
        m.accumulate(1.0, 4, 4); // loss sum 12, correct 7
        let m = m.finalize();
        assert!((m.loss - 1.5).abs() < 1e-6);
        assert!((m.accuracy - 7.0 / 8.0).abs() < 1e-6);
        assert_eq!(m.iterations, 2);
        assert_eq!(m.examples, 8);
    }
}
