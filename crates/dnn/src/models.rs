//! The three paper models: LeNet-5, a text CNN, and an LSTM classifier.
//!
//! All three implement [`Model`], the interface PipeTune's trials drive: one
//! call per epoch, real SGD updates inside, plus a numeric
//! [`ModelSignature`] that feeds the cluster cost model and the simulated
//! performance counters.

use pipetune_tensor::{Tensor, TensorError};
use rand::Rng;

use crate::dataset::{BatchIndices, Dataset};
use crate::layers::{Conv2d, Dense, Dropout, Embedding, Flatten, MaxPool2d, Relu};
use crate::loss::softmax_cross_entropy;
use crate::lstm::LstmCell;
use crate::metrics::EpochMetrics;
use crate::optim::{Sgd, TrainConfig};
use crate::param::ParamVisitor;
use crate::DnnError;

/// Which of the paper's model families a [`Model`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// LeNet-5 convolutional network (Type-I image workloads).
    LeNet5,
    /// Convolutional text classifier (Type-II `cnn` workload).
    TextCnn,
    /// LSTM text classifier (Type-II `lstm` workload).
    Lstm,
}

impl ModelKind {
    /// Lower-case name used in experiment output, matching the paper's labels.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::LeNet5 => "lenet",
            ModelKind::TextCnn => "cnn",
            ModelKind::Lstm => "lstm",
        }
    }
}

/// Numeric characterisation of a model's computational behaviour.
///
/// The simulated PMU (`pipetune-perfmon`) and the cluster cost model
/// (`pipetune-cluster`) are driven by these numbers, so profiles and epoch
/// durations genuinely reflect the model architecture being trained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSignature {
    /// Floating-point operations per training example (forward + backward).
    pub flops_per_sample: f64,
    /// Total trainable parameters.
    pub params: usize,
    /// Approximate working-set size in bytes (parameters + one activation set).
    pub working_set_bytes: f64,
    /// Bytes of memory traffic per flop (memory intensity).
    pub memory_intensity: f64,
    /// Fraction of instructions that are branches (higher for control-heavy
    /// models such as the LSTM's gate logic).
    pub branch_ratio: f64,
}

/// A trainable workload model: the "model" half of the paper's workload tuple.
pub trait Model {
    /// The model family.
    fn kind(&self) -> ModelKind;

    /// Runs one full epoch of mini-batch SGD over `data`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError`] on configuration or feature-kind mismatches.
    fn train_epoch<R: Rng>(
        &mut self,
        data: &Dataset,
        cfg: &TrainConfig,
        rng: &mut R,
    ) -> Result<EpochMetrics, DnnError>
    where
        Self: Sized;

    /// Computes test accuracy (fraction correct) on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError`] on feature-kind mismatches.
    fn evaluate(&mut self, data: &Dataset) -> Result<f32, DnnError> {
        let preds = self.predictions(data)?;
        let correct = preds.iter().zip(data.labels()).filter(|(p, l)| p == l).count();
        Ok(correct as f32 / data.len() as f32)
    }

    /// Predicted class per example (evaluation mode).
    ///
    /// # Errors
    ///
    /// Returns [`DnnError`] on feature-kind mismatches.
    fn predictions(&mut self, data: &Dataset) -> Result<Vec<usize>, DnnError>;

    /// Full confusion matrix on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError`] on feature-kind mismatches.
    fn confusion(&mut self, data: &Dataset) -> Result<crate::ConfusionMatrix, DnnError> {
        let preds = self.predictions(data)?;
        crate::ConfusionMatrix::from_predictions(&preds, data.labels(), data.num_classes())
    }

    /// Total trainable parameter count.
    fn num_params(&self) -> usize;

    /// Numeric signature used by the simulated profiler and cost model.
    fn signature(&self) -> ModelSignature;

    /// Visits every trainable parameter.
    fn visit_params(&mut self, v: &mut dyn ParamVisitor);

    /// Snapshots every trainable parameter value, in visitation order —
    /// the "trained model" half of an HPT job's output (Fig. 6).
    fn export_weights(&mut self) -> Vec<Tensor>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.visit_params(&mut |p: &mut crate::Param| out.push(p.value().clone()));
        out
    }

    /// Restores parameter values from a snapshot taken by
    /// [`Model::export_weights`] on an identically-shaped model.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when the snapshot has the wrong
    /// parameter count or any tensor has the wrong shape; on error the model
    /// is left partially updated and should be discarded.
    fn import_weights(&mut self, weights: &[Tensor]) -> Result<(), DnnError>
    where
        Self: Sized,
    {
        let mut idx = 0usize;
        let mut error: Option<DnnError> = None;
        self.visit_params(&mut |p: &mut crate::Param| {
            if error.is_some() {
                return;
            }
            match weights.get(idx) {
                Some(w) if w.shape() == p.value().shape() => {
                    *p.value_mut() = w.clone();
                }
                Some(w) => {
                    error = Some(DnnError::InvalidConfig {
                        reason: format!(
                            "weight {idx} shape {:?} does not match {:?}",
                            w.shape().dims(),
                            p.value().shape().dims()
                        ),
                    });
                }
                None => {
                    error = Some(DnnError::InvalidConfig {
                        reason: format!("snapshot ends at {idx} parameters"),
                    });
                }
            }
            idx += 1;
        });
        if let Some(e) = error {
            return Err(e);
        }
        if idx != weights.len() {
            return Err(DnnError::InvalidConfig {
                reason: format!("snapshot has {} parameters, model has {idx}", weights.len()),
            });
        }
        Ok(())
    }

    /// Snapshots every trainable parameter *with* its optimizer state
    /// (gradient accumulator, momentum velocity and any second-moment
    /// buffer), in visitation order. Unlike [`Model::export_weights`],
    /// which captures values only, restoring this snapshot resumes
    /// training bit for bit.
    fn export_params(&mut self) -> Vec<crate::Param>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.visit_params(&mut |p: &mut crate::Param| out.push(p.clone()));
        out
    }

    /// Restores full parameter state from a snapshot taken by
    /// [`Model::export_params`] on an identically-shaped model.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when the snapshot has the wrong
    /// parameter count or any tensor has the wrong shape; on error the
    /// model is left partially updated and should be discarded.
    fn import_params(&mut self, params: &[crate::Param]) -> Result<(), DnnError>
    where
        Self: Sized,
    {
        let mut idx = 0usize;
        let mut error: Option<DnnError> = None;
        self.visit_params(&mut |p: &mut crate::Param| {
            if error.is_some() {
                return;
            }
            match params.get(idx) {
                Some(saved) if saved.value().shape() == p.value().shape() => {
                    *p = saved.clone();
                }
                Some(saved) => {
                    error = Some(DnnError::InvalidConfig {
                        reason: format!(
                            "param {idx} shape {:?} does not match {:?}",
                            saved.value().shape().dims(),
                            p.value().shape().dims()
                        ),
                    });
                }
                None => {
                    error = Some(DnnError::InvalidConfig {
                        reason: format!("snapshot ends at {idx} parameters"),
                    });
                }
            }
            idx += 1;
        });
        if let Some(e) = error {
            return Err(e);
        }
        if idx != params.len() {
            return Err(DnnError::InvalidConfig {
                reason: format!("snapshot has {} parameters, model has {idx}", params.len()),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// LeNet-5
// ---------------------------------------------------------------------------

/// LeNet-5 convolutional network (paper's Type-I model).
///
/// `conv(1→6, 5×5) → relu → pool2 → conv(6→16, 5×5) → relu → pool2 →
/// flatten → dense(120) → relu → dropout → dense(84) → relu → dense(classes)`.
#[derive(Debug, Clone)]
pub struct LeNet5 {
    conv1: Conv2d,
    relu1: Relu,
    pool1: MaxPool2d,
    conv2: Conv2d,
    relu2: Relu,
    pool2: MaxPool2d,
    flatten: Flatten,
    fc1: Dense,
    relu3: Relu,
    dropout: Dropout,
    fc2: Dense,
    relu4: Relu,
    fc3: Dense,
    input_size: usize,
    classes: usize,
}

impl LeNet5 {
    /// Builds LeNet-5 for square `input_size × input_size` one-channel images.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when the input size does not
    /// survive the two conv+pool stages (valid sizes satisfy
    /// `(s − 4) mod 2 = 0` and `((s − 4)/2 − 4) ≥ 2` and even — e.g. 16, 28),
    /// or when the dropout rate is invalid.
    pub fn with_input_size<R: Rng>(
        input_size: usize,
        classes: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Result<Self, DnnError> {
        let s1 = input_size.checked_sub(4).ok_or_else(|| DnnError::InvalidConfig {
            reason: format!("input size {input_size} too small for LeNet-5"),
        })?;
        if s1 % 2 != 0 {
            return Err(DnnError::InvalidConfig {
                reason: format!("input size {input_size} incompatible with 2x2 pooling"),
            });
        }
        let p1 = s1 / 2;
        let s2 = p1.checked_sub(4).filter(|&v| v >= 2 && v % 2 == 0).ok_or_else(|| {
            DnnError::InvalidConfig {
                reason: format!("input size {input_size} too small for second conv stage"),
            }
        })?;
        let p2 = s2 / 2;
        let flat = 16 * p2 * p2;
        Ok(LeNet5 {
            conv1: Conv2d::new(1, 6, 5, rng),
            relu1: Relu::new(),
            pool1: MaxPool2d::new(2),
            conv2: Conv2d::new(6, 16, 5, rng),
            relu2: Relu::new(),
            pool2: MaxPool2d::new(2),
            flatten: Flatten::new(),
            fc1: Dense::new(flat, 120, rng),
            relu3: Relu::new(),
            dropout: Dropout::new(dropout)?,
            fc2: Dense::new(120, 84, rng),
            relu4: Relu::new(),
            fc3: Dense::new(84, classes, rng),
            input_size,
            classes,
        })
    }

    /// Standard 28×28 MNIST-shaped constructor.
    ///
    /// # Errors
    ///
    /// Propagates the constraints of [`LeNet5::with_input_size`].
    pub fn new<R: Rng>(classes: usize, dropout: f32, rng: &mut R) -> Result<Self, DnnError> {
        Self::with_input_size(28, classes, dropout, rng)
    }

    fn forward<R: Rng>(
        &mut self,
        x: &Tensor,
        train: bool,
        rng: &mut R,
    ) -> Result<Tensor, TensorError> {
        let y = self.conv1.forward(x, train)?;
        let y = self.relu1.forward(&y, train);
        let y = self.pool1.forward(&y, train)?;
        let y = self.conv2.forward(&y, train)?;
        let y = self.relu2.forward(&y, train);
        let y = self.pool2.forward(&y, train)?;
        let y = self.flatten.forward(&y)?;
        let y = self.fc1.forward(&y, train)?;
        let y = self.relu3.forward(&y, train);
        let y = self.dropout.forward(&y, train, rng);
        let y = self.fc2.forward(&y, train)?;
        let y = self.relu4.forward(&y, train);
        self.fc3.forward(&y, train)
    }

    fn backward(&mut self, grad_logits: &Tensor) -> Result<(), TensorError> {
        let g = self.fc3.backward(grad_logits)?;
        let g = self.relu4.backward(&g)?;
        let g = self.fc2.backward(&g)?;
        let g = self.dropout.backward(&g)?;
        let g = self.relu3.backward(&g)?;
        let g = self.fc1.backward(&g)?;
        let g = self.flatten.backward(&g)?;
        let g = self.pool2.backward(&g)?;
        let g = self.relu2.backward(&g)?;
        let g = self.conv2.backward(&g)?;
        let g = self.pool1.backward(&g)?;
        let g = self.relu1.backward(&g)?;
        self.conv1.backward(&g)?;
        Ok(())
    }
}

impl Model for LeNet5 {
    fn kind(&self) -> ModelKind {
        ModelKind::LeNet5
    }

    fn train_epoch<R: Rng>(
        &mut self,
        data: &Dataset,
        cfg: &TrainConfig,
        rng: &mut R,
    ) -> Result<EpochMetrics, DnnError> {
        cfg.validate()?;
        let sgd = Sgd::from_config(cfg);
        let plan = BatchIndices::plan(data.len(), cfg.batch_size, rng)?;
        let mut metrics = EpochMetrics::default();
        for idx in plan.iter() {
            let x = data.gather_images(idx)?;
            let labels = data.gather_labels(idx);
            let logits = self.forward(&x, true, rng)?;
            let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
            let preds = logits.argmax_rows()?;
            let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
            self.backward(&grad)?;
            self.visit_params(&mut |p: &mut crate::Param| sgd.step(p));
            metrics.accumulate(loss, correct, idx.len());
        }
        Ok(metrics.finalize())
    }

    fn predictions(&mut self, data: &Dataset) -> Result<Vec<usize>, DnnError> {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let n = data.len();
        let chunk = 256usize;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let x = data.gather_images(&idx)?;
            let logits = self.forward(&x, false, &mut rng)?;
            out.extend(logits.argmax_rows()?);
            start = end;
        }
        Ok(out)
    }

    fn num_params(&self) -> usize {
        self.conv1.num_params()
            + self.conv2.num_params()
            + self.fc1.num_params()
            + self.fc2.num_params()
            + self.fc3.num_params()
    }

    fn signature(&self) -> ModelSignature {
        let s = self.input_size as f64;
        let c1_out = s - 4.0;
        let p1 = c1_out / 2.0;
        let c2_out = p1 - 4.0;
        let p2 = c2_out / 2.0;
        // 2 flops per MAC; backward ≈ 2× forward.
        let conv_flops = 3.0
            * (2.0 * 6.0 * c1_out * c1_out * 25.0 + 2.0 * 16.0 * 6.0 * c2_out * c2_out * 25.0);
        let flat = 16.0 * p2 * p2;
        let dense_flops =
            3.0 * 2.0 * (flat * 120.0 + 120.0 * 84.0 + 84.0 * self.classes as f64);
        let params = self.num_params();
        ModelSignature {
            flops_per_sample: conv_flops + dense_flops,
            params,
            working_set_bytes: params as f64 * 4.0 + s * s * 4.0 * 8.0,
            memory_intensity: 0.3, // conv reuses weights heavily
            branch_ratio: 0.05,
        }
    }

    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        self.conv1.visit_params(v);
        self.conv2.visit_params(v);
        self.fc1.visit_params(v);
        self.fc2.visit_params(v);
        self.fc3.visit_params(v);
    }
}

// ---------------------------------------------------------------------------
// Text CNN
// ---------------------------------------------------------------------------

/// Convolutional text classifier (paper's Type-II `cnn` workload):
/// `embedding → 1-D conv (window 3) → relu → global max-pool → dropout →
/// dense(classes)`.
#[derive(Debug, Clone)]
pub struct TextCnn {
    embedding: Embedding,
    conv: Dense, // applied to im2col'd windows: [b*(t-w+1), w*dim] → [.., filters]
    relu: Relu,
    dropout: Dropout,
    fc: Dense,
    window: usize,
    filters: usize,
    seq_len: usize,
    // Cached by forward(train=true) for backward.
    pool_argmax: Option<Vec<usize>>,
    cached_batch: usize,
}

impl TextCnn {
    /// Builds a text CNN.
    ///
    /// * `vocab` — vocabulary size.
    /// * `seq_len` — fixed sequence length of the dataset.
    /// * `embed_dim` — embedding dimensionality (the paper's tunable, 50–300).
    /// * `filters` — number of convolution filters.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when the window does not fit in
    /// `seq_len` or the dropout rate is invalid.
    pub fn new<R: Rng>(
        vocab: usize,
        seq_len: usize,
        embed_dim: usize,
        filters: usize,
        classes: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Result<Self, DnnError> {
        let window = 3usize;
        if seq_len < window {
            return Err(DnnError::InvalidConfig {
                reason: format!("sequence length {seq_len} shorter than conv window {window}"),
            });
        }
        Ok(TextCnn {
            embedding: Embedding::new(vocab, embed_dim, rng),
            conv: Dense::new(window * embed_dim, filters, rng),
            relu: Relu::new(),
            dropout: Dropout::new(dropout)?,
            fc: Dense::new(filters, classes, rng),
            window,
            filters,
            seq_len,
            pool_argmax: None,
            cached_batch: 0,
        })
    }

    /// Embedding dimensionality in use.
    pub fn embed_dim(&self) -> usize {
        self.embedding.dim()
    }

    fn positions(&self) -> usize {
        self.seq_len - self.window + 1
    }

    fn im2col(&self, emb: &Tensor, b: usize) -> Tensor {
        let d = self.embedding.dim();
        let t = self.seq_len;
        let w = self.window;
        let pos = self.positions();
        let mut out = Vec::with_capacity(b * pos * w * d);
        for bi in 0..b {
            for p in 0..pos {
                let start = (bi * t + p) * d;
                out.extend_from_slice(&emb.data()[start..start + w * d]);
            }
        }
        Tensor::from_vec(out, &[b * pos, w * d]).expect("sizes agree by construction")
    }

    fn forward<R: Rng>(
        &mut self,
        batch: &[Vec<u32>],
        train: bool,
        rng: &mut R,
    ) -> Result<Tensor, TensorError> {
        let b = batch.len();
        let emb = self.embedding.forward(batch, train)?; // [b, t, d]
        let windows = self.im2col(&emb, b); // [b*pos, w*d]
        let conv_out = self.conv.forward(&windows, train)?; // [b*pos, f]
        let act = self.relu.forward(&conv_out, train);
        // Global max pool over positions: [b*pos, f] → [b, f].
        let pos = self.positions();
        let f = self.filters;
        let mut pooled = vec![f32::NEG_INFINITY; b * f];
        let mut argmax = vec![0usize; b * f];
        for bi in 0..b {
            for p in 0..pos {
                let row = (bi * pos + p) * f;
                for j in 0..f {
                    let v = act.data()[row + j];
                    if v > pooled[bi * f + j] {
                        pooled[bi * f + j] = v;
                        argmax[bi * f + j] = row + j;
                    }
                }
            }
        }
        self.pool_argmax = train.then_some(argmax);
        self.cached_batch = b;
        let pooled = Tensor::from_vec(pooled, &[b, f])?;
        let dropped = self.dropout.forward(&pooled, train, rng);
        self.fc.forward(&dropped, train)
    }

    fn backward(&mut self, grad_logits: &Tensor) -> Result<(), TensorError> {
        let g = self.fc.backward(grad_logits)?;
        let g = self.dropout.backward(&g)?;
        let argmax = self.pool_argmax.take().ok_or(TensorError::Empty)?;
        let b = self.cached_batch;
        let pos = self.positions();
        let f = self.filters;
        // Scatter pooled gradients back to the conv activation positions.
        let mut gact = Tensor::zeros(&[b * pos, f]);
        for bi in 0..b {
            for j in 0..f {
                gact.data_mut()[argmax[bi * f + j]] += g.data()[bi * f + j];
            }
        }
        let g = self.relu.backward(&gact)?;
        let gwin = self.conv.backward(&g)?; // [b*pos, w*d]
        // col2im: scatter window gradients back onto the embedded sequence.
        let d = self.embedding.dim();
        let t = self.seq_len;
        let w = self.window;
        let mut gemb = Tensor::zeros(&[b, t, d]);
        for bi in 0..b {
            for p in 0..pos {
                let src = (bi * pos + p) * w * d;
                let dst = (bi * t + p) * d;
                for k in 0..w * d {
                    gemb.data_mut()[dst + k] += gwin.data()[src + k];
                }
            }
        }
        self.embedding.backward(&gemb)
    }
}

impl Model for TextCnn {
    fn kind(&self) -> ModelKind {
        ModelKind::TextCnn
    }

    fn train_epoch<R: Rng>(
        &mut self,
        data: &Dataset,
        cfg: &TrainConfig,
        rng: &mut R,
    ) -> Result<EpochMetrics, DnnError> {
        cfg.validate()?;
        let sgd = Sgd::from_config(cfg);
        let plan = BatchIndices::plan(data.len(), cfg.batch_size, rng)?;
        let mut metrics = EpochMetrics::default();
        for idx in plan.iter() {
            let x = data.gather_tokens(idx)?;
            let labels = data.gather_labels(idx);
            let logits = self.forward(&x, true, rng)?;
            let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
            let preds = logits.argmax_rows()?;
            let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
            self.backward(&grad)?;
            self.visit_params(&mut |p: &mut crate::Param| sgd.step(p));
            metrics.accumulate(loss, correct, idx.len());
        }
        Ok(metrics.finalize())
    }

    fn predictions(&mut self, data: &Dataset) -> Result<Vec<usize>, DnnError> {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let n = data.len();
        let chunk = 256usize;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let x = data.gather_tokens(&idx)?;
            let logits = self.forward(&x, false, &mut rng)?;
            out.extend(logits.argmax_rows()?);
            start = end;
        }
        Ok(out)
    }

    fn num_params(&self) -> usize {
        self.embedding.num_params() + self.conv.num_params() + self.fc.num_params()
    }

    fn signature(&self) -> ModelSignature {
        let d = self.embedding.dim() as f64;
        let t = self.seq_len as f64;
        let w = self.window as f64;
        let f = self.filters as f64;
        let flops = 3.0 * 2.0 * (t * w * d * f);
        let params = self.num_params();
        ModelSignature {
            flops_per_sample: flops,
            params,
            working_set_bytes: params as f64 * 4.0 + t * d * 4.0 * 4.0,
            memory_intensity: 1.6, // embedding lookups are gather-heavy
            branch_ratio: 0.14,
        }
    }

    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        self.embedding.visit_params(v);
        self.conv.visit_params(v);
        self.fc.visit_params(v);
    }
}

// ---------------------------------------------------------------------------
// LSTM classifier
// ---------------------------------------------------------------------------

/// LSTM text classifier (paper's Type-II `lstm` workload):
/// `embedding → LSTM → dropout → dense(classes)`.
#[derive(Debug, Clone)]
pub struct LstmClassifier {
    embedding: Embedding,
    lstm: LstmCell,
    dropout: Dropout,
    fc: Dense,
    seq_len: usize,
}

impl LstmClassifier {
    /// Builds an LSTM classifier.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] for a zero sequence length or an
    /// invalid dropout rate.
    pub fn new<R: Rng>(
        vocab: usize,
        seq_len: usize,
        embed_dim: usize,
        hidden: usize,
        classes: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Result<Self, DnnError> {
        if seq_len == 0 {
            return Err(DnnError::InvalidConfig { reason: "sequence length must be positive".into() });
        }
        Ok(LstmClassifier {
            embedding: Embedding::new(vocab, embed_dim, rng),
            lstm: LstmCell::new(embed_dim, hidden, rng),
            dropout: Dropout::new(dropout)?,
            fc: Dense::new(hidden, classes, rng),
            seq_len,
        })
    }

    /// Embedding dimensionality in use.
    pub fn embed_dim(&self) -> usize {
        self.embedding.dim()
    }

    fn forward<R: Rng>(
        &mut self,
        batch: &[Vec<u32>],
        train: bool,
        rng: &mut R,
    ) -> Result<Tensor, TensorError> {
        let emb = self.embedding.forward(batch, train)?;
        let h = self.lstm.forward(&emb, train)?;
        let dropped = self.dropout.forward(&h, train, rng);
        self.fc.forward(&dropped, train)
    }

    fn backward(&mut self, grad_logits: &Tensor) -> Result<(), TensorError> {
        let g = self.fc.backward(grad_logits)?;
        let g = self.dropout.backward(&g)?;
        let gemb = self.lstm.backward(&g)?;
        self.embedding.backward(&gemb)
    }
}

impl Model for LstmClassifier {
    fn kind(&self) -> ModelKind {
        ModelKind::Lstm
    }

    fn train_epoch<R: Rng>(
        &mut self,
        data: &Dataset,
        cfg: &TrainConfig,
        rng: &mut R,
    ) -> Result<EpochMetrics, DnnError> {
        cfg.validate()?;
        let sgd = Sgd::from_config(cfg);
        let plan = BatchIndices::plan(data.len(), cfg.batch_size, rng)?;
        let mut metrics = EpochMetrics::default();
        for idx in plan.iter() {
            let x = data.gather_tokens(idx)?;
            let labels = data.gather_labels(idx);
            let logits = self.forward(&x, true, rng)?;
            let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
            let preds = logits.argmax_rows()?;
            let correct = preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
            self.backward(&grad)?;
            self.visit_params(&mut |p: &mut crate::Param| sgd.step(p));
            metrics.accumulate(loss, correct, idx.len());
        }
        Ok(metrics.finalize())
    }

    fn predictions(&mut self, data: &Dataset) -> Result<Vec<usize>, DnnError> {
        let mut rng = rand::rngs::mock::StepRng::new(0, 1);
        let n = data.len();
        let chunk = 256usize;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let x = data.gather_tokens(&idx)?;
            let logits = self.forward(&x, false, &mut rng)?;
            out.extend(logits.argmax_rows()?);
            start = end;
        }
        Ok(out)
    }

    fn num_params(&self) -> usize {
        self.embedding.num_params() + self.lstm.num_params() + self.fc.num_params()
    }

    fn signature(&self) -> ModelSignature {
        let d = self.embedding.dim() as f64;
        let h = self.lstm.hidden() as f64;
        let t = self.seq_len as f64;
        let flops = 3.0 * 2.0 * t * 4.0 * h * (d + h);
        let params = self.num_params();
        ModelSignature {
            flops_per_sample: flops,
            params,
            working_set_bytes: params as f64 * 4.0 + t * (d + 6.0 * h) * 4.0,
            memory_intensity: 1.4,
            branch_ratio: 0.18, // recurrent gate logic is branchier
        }
    }

    fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        self.embedding.visit_params(v);
        self.lstm.visit_params(v);
        self.fc.visit_params(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Features;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Tiny separable image problem: class 0 bright top-left, class 1 bright
    /// bottom-right.
    fn toy_images(n: usize, size: usize, rng: &mut StdRng) -> Dataset {
        let mut data = Vec::with_capacity(n * size * size);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            for y in 0..size {
                for x in 0..size {
                    let hot = if class == 0 { y < size / 2 && x < size / 2 } else { y >= size / 2 && x >= size / 2 };
                    let base: f32 = if hot { 1.0 } else { 0.0 };
                    data.push(base + 0.1 * rng.gen::<f32>());
                }
            }
            labels.push(class);
        }
        let t = Tensor::from_vec(data, &[n, 1, size, size]).unwrap();
        Dataset::new(Features::Images(t), labels, 2).unwrap()
    }

    /// Tiny separable token problem: class c's sequences are dominated by
    /// tokens from band c.
    fn toy_tokens(n: usize, seq: usize, vocab: usize, classes: usize, rng: &mut StdRng) -> Dataset {
        let band = vocab / classes;
        let mut seqs = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % classes;
            let s: Vec<u32> = (0..seq)
                .map(|_| {
                    if rng.gen::<f32>() < 0.8 {
                        (class * band + rng.gen_range(0..band)) as u32
                    } else {
                        rng.gen_range(0..vocab) as u32
                    }
                })
                .collect();
            seqs.push(s);
            labels.push(class);
        }
        Dataset::new(Features::Tokens(seqs), labels, classes).unwrap()
    }

    #[test]
    fn lenet_learns_separable_toy_problem() {
        let mut rng = StdRng::seed_from_u64(42);
        let data = toy_images(64, 16, &mut rng);
        let mut model = LeNet5::with_input_size(16, 2, 0.0, &mut rng).unwrap();
        let cfg = TrainConfig { batch_size: 16, learning_rate: 0.05, ..TrainConfig::default() };
        let before = model.evaluate(&data).unwrap();
        for _ in 0..6 {
            model.train_epoch(&data, &cfg, &mut rng).unwrap();
        }
        let after = model.evaluate(&data).unwrap();
        assert!(after > before.max(0.8), "accuracy {before} → {after}");
    }

    #[test]
    fn lenet_rejects_bad_input_size() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(LeNet5::with_input_size(12, 2, 0.0, &mut rng).is_err());
        assert!(LeNet5::with_input_size(9, 2, 0.0, &mut rng).is_err());
        assert!(LeNet5::with_input_size(28, 10, 0.0, &mut rng).is_ok());
    }

    #[test]
    fn textcnn_learns_separable_tokens() {
        let mut rng = StdRng::seed_from_u64(7);
        let data = toy_tokens(80, 12, 40, 4, &mut rng);
        let mut model = TextCnn::new(40, 12, 16, 8, 4, 0.0, &mut rng).unwrap();
        let cfg = TrainConfig { batch_size: 16, learning_rate: 0.1, ..TrainConfig::default() };
        for _ in 0..8 {
            model.train_epoch(&data, &cfg, &mut rng).unwrap();
        }
        let acc = model.evaluate(&data).unwrap();
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn lstm_classifier_learns_separable_tokens() {
        let mut rng = StdRng::seed_from_u64(8);
        let data = toy_tokens(60, 8, 20, 2, &mut rng);
        let mut model = LstmClassifier::new(20, 8, 8, 12, 2, 0.0, &mut rng).unwrap();
        let cfg = TrainConfig { batch_size: 12, learning_rate: 0.1, ..TrainConfig::default() };
        for _ in 0..10 {
            model.train_epoch(&data, &cfg, &mut rng).unwrap();
        }
        let acc = model.evaluate(&data).unwrap();
        assert!(acc > 0.7, "accuracy {acc}");
    }

    #[test]
    fn weight_snapshots_round_trip_predictions() {
        let mut rng = StdRng::seed_from_u64(77);
        let data = toy_images(48, 16, &mut rng);
        let mut trained = LeNet5::with_input_size(16, 2, 0.0, &mut rng).unwrap();
        let cfg = TrainConfig { batch_size: 16, learning_rate: 0.05, ..TrainConfig::default() };
        for _ in 0..4 {
            trained.train_epoch(&data, &cfg, &mut rng).unwrap();
        }
        let weights = trained.export_weights();
        // A fresh model with different init must reproduce the trained
        // model's predictions after import.
        let mut rng2 = StdRng::seed_from_u64(12345);
        let mut fresh = LeNet5::with_input_size(16, 2, 0.0, &mut rng2).unwrap();
        assert_ne!(fresh.predictions(&data).unwrap(), trained.predictions(&data).unwrap());
        fresh.import_weights(&weights).unwrap();
        assert_eq!(fresh.predictions(&data).unwrap(), trained.predictions(&data).unwrap());
    }

    #[test]
    fn weight_import_rejects_mismatched_snapshots() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut a = LeNet5::with_input_size(16, 2, 0.0, &mut rng).unwrap();
        let mut b = TextCnn::new(40, 12, 16, 8, 4, 0.0, &mut rng).unwrap();
        let weights = b.export_weights();
        assert!(a.import_weights(&weights).is_err());
        assert!(a.import_weights(&[]).is_err());
    }

    #[test]
    fn confusion_matrix_is_consistent_with_accuracy() {
        let mut rng = StdRng::seed_from_u64(42);
        let data = toy_images(64, 16, &mut rng);
        let mut model = LeNet5::with_input_size(16, 2, 0.0, &mut rng).unwrap();
        let cfg = TrainConfig { batch_size: 16, learning_rate: 0.05, ..TrainConfig::default() };
        for _ in 0..6 {
            model.train_epoch(&data, &cfg, &mut rng).unwrap();
        }
        let acc = model.evaluate(&data).unwrap();
        let cm = model.confusion(&data).unwrap();
        assert!((cm.accuracy() - f64::from(acc)).abs() < 1e-6);
        assert_eq!(cm.total(), 64);
        assert!(cm.macro_f1() > 0.5);
    }

    #[test]
    fn wrong_feature_kind_is_reported() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = toy_tokens(8, 8, 20, 2, &mut rng);
        let mut model = LeNet5::with_input_size(16, 2, 0.0, &mut rng).unwrap();
        let cfg = TrainConfig::default();
        assert!(matches!(
            model.train_epoch(&data, &cfg, &mut rng),
            Err(DnnError::WrongFeatureKind { .. })
        ));
    }

    #[test]
    fn signatures_scale_with_architecture() {
        let mut rng = StdRng::seed_from_u64(10);
        let small = TextCnn::new(100, 20, 50, 8, 20, 0.0, &mut rng).unwrap();
        let large = TextCnn::new(100, 20, 300, 8, 20, 0.0, &mut rng).unwrap();
        assert!(large.signature().flops_per_sample > small.signature().flops_per_sample);
        assert!(large.num_params() > small.num_params());
    }

    #[test]
    fn larger_batch_means_fewer_iterations() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = toy_images(64, 16, &mut rng);
        let mut model = LeNet5::with_input_size(16, 2, 0.0, &mut rng).unwrap();
        let m_small = model
            .train_epoch(&data, &TrainConfig { batch_size: 8, ..TrainConfig::default() }, &mut rng)
            .unwrap();
        let m_large = model
            .train_epoch(&data, &TrainConfig { batch_size: 32, ..TrainConfig::default() }, &mut rng)
            .unwrap();
        assert_eq!(m_small.iterations, 8);
        assert_eq!(m_large.iterations, 2);
    }
}
