use std::error::Error;
use std::fmt;

use pipetune_tensor::TensorError;

/// Error type returned by fallible operations in the DNN framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnnError {
    /// An underlying tensor operation failed (shape/rank/size problems).
    Tensor(TensorError),
    /// Feature and label counts disagree, or labels exceed the class count.
    InvalidDataset {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// A training configuration value is out of range (e.g. batch size 0).
    InvalidConfig {
        /// Human-readable description of the offending value.
        reason: String,
    },
    /// The model received features of a kind it cannot consume
    /// (e.g. token sequences fed to an image model).
    WrongFeatureKind {
        /// Feature kind the model expects.
        expected: &'static str,
        /// Feature kind actually supplied.
        actual: &'static str,
    },
}

impl fmt::Display for DnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnnError::Tensor(e) => write!(f, "tensor error: {e}"),
            DnnError::InvalidDataset { reason } => write!(f, "invalid dataset: {reason}"),
            DnnError::InvalidConfig { reason } => write!(f, "invalid training config: {reason}"),
            DnnError::WrongFeatureKind { expected, actual } => {
                write!(f, "model expects {expected} features, got {actual}")
            }
        }
    }
}

impl Error for DnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DnnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for DnnError {
    fn from(e: TensorError) -> Self {
        DnnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        let e: DnnError = TensorError::Empty.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("tensor error"));
    }
}
