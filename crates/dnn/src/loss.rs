//! Softmax cross-entropy loss with fused gradient.

use pipetune_tensor::{Tensor, TensorError};

/// Computes mean softmax cross-entropy over a batch of logits and the
/// gradient with respect to the logits.
///
/// * `logits`: `[batch, classes]`
/// * `labels`: one class index per row
///
/// Returns `(mean_loss, grad_logits)` where `grad_logits = (softmax - onehot) / batch`.
///
/// # Errors
///
/// Returns a shape error when `labels.len()` differs from the batch size or a
/// label is out of range.
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), TensorError> {
    if logits.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: logits.shape().rank() });
    }
    let (m, n) = (logits.shape().dims()[0], logits.shape().dims()[1]);
    if labels.len() != m {
        return Err(TensorError::SizeMismatch { expected: m, actual: labels.len() });
    }
    if let Some((_, &bad)) = labels.iter().enumerate().find(|(_, &l)| l >= n) {
        return Err(TensorError::IndexOutOfBounds { axis: 1, index: bad, len: n });
    }
    let probs = logits.softmax_rows()?;
    let mut loss = 0.0f32;
    let mut grad = probs.data().to_vec();
    let inv_m = 1.0 / m as f32;
    for (i, &label) in labels.iter().enumerate() {
        let p = probs.data()[i * n + label].max(1e-12);
        loss -= p.ln();
        grad[i * n + label] -= 1.0;
    }
    for g in &mut grad {
        *g *= inv_m;
    }
    Ok((loss * inv_m, Tensor::from_vec(grad, &[m, n])?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for i in 0..2 {
            let s: f32 = grad.data()[i * 4..(i + 1) * 4].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0, 10.0], &[2, 2]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1]).unwrap();
        assert!(loss < 1e-3);
    }

    #[test]
    fn gradient_matches_numeric_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 0.5, 0.1, 0.9, -0.4], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for probe in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[probe] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[probe] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let (fm, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[probe]).abs() < 1e-3, "probe {probe}");
        }
    }

    #[test]
    fn rejects_out_of_range_label() {
        let logits = Tensor::zeros(&[1, 2]);
        assert!(softmax_cross_entropy(&logits, &[2]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 1]).is_err());
    }
}
