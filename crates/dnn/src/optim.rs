//! SGD-with-momentum optimizer and the per-trial training configuration.

use serde::{Deserialize, Serialize};

use crate::param::Param;
use crate::DnnError;

/// Training configuration for one trial: the system-independent knobs a
/// hyperparameter tuner controls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Mini-batch size (paper range 32–1024).
    pub batch_size: usize,
    /// SGD learning rate (paper range 0.001–0.1).
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { batch_size: 32, learning_rate: 0.01, momentum: 0.9, weight_decay: 0.0 }
    }
}

impl TrainConfig {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] for a zero batch size, a
    /// non-positive/non-finite learning rate, or out-of-range momentum.
    pub fn validate(&self) -> Result<(), DnnError> {
        if self.batch_size == 0 {
            return Err(DnnError::InvalidConfig { reason: "batch size must be positive".into() });
        }
        if !self.learning_rate.is_finite() || self.learning_rate <= 0.0 {
            return Err(DnnError::InvalidConfig {
                reason: format!("learning rate {} must be positive", self.learning_rate),
            });
        }
        if !(0.0..1.0).contains(&self.momentum) {
            return Err(DnnError::InvalidConfig {
                reason: format!("momentum {} outside [0, 1)", self.momentum),
            });
        }
        Ok(())
    }
}

/// Adam optimizer (Kingma & Ba, 2015): adaptive per-coordinate step sizes.
///
/// Provided alongside [`Sgd`] for framework completeness; the paper's
/// evaluation trains with SGD.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
}

impl Adam {
    /// Creates Adam with the canonical β₁ = 0.9, β₂ = 0.999, ε = 1e-8.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, step: 0 }
    }

    /// Advances the shared step counter; call once per mini-batch before
    /// visiting parameters.
    pub fn next_step(&mut self) {
        self.step += 1;
    }

    /// Applies one update to a parameter and clears its gradient.
    pub fn step(&self, param: &mut Param) {
        param.adam_step(self.lr, self.beta1, self.beta2, self.eps, self.step.max(1));
    }
}

/// Plain SGD with momentum and optional weight decay.
///
/// The optimizer is stateless — momentum buffers live inside each
/// [`Param`] — so it can be applied to any model via
/// [`crate::Model::visit_params`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Creates an optimizer from a validated training configuration.
    pub fn from_config(cfg: &TrainConfig) -> Self {
        Sgd { lr: cfg.learning_rate, momentum: cfg.momentum, weight_decay: cfg.weight_decay }
    }

    /// Applies one update step to a parameter and clears its gradient.
    pub fn step(&self, param: &mut Param) {
        param.sgd_step(self.lr, self.momentum, self.weight_decay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_tensor::Tensor;

    #[test]
    fn config_validation_catches_bad_values() {
        assert!(TrainConfig { batch_size: 0, ..TrainConfig::default() }.validate().is_err());
        assert!(TrainConfig { learning_rate: -1.0, ..TrainConfig::default() }.validate().is_err());
        assert!(TrainConfig { momentum: 1.5, ..TrainConfig::default() }.validate().is_err());
        assert!(TrainConfig::default().validate().is_ok());
    }

    #[test]
    fn adam_optimizer_descends_quadratic() {
        let mut p = Param::new(Tensor::ones(&[1]));
        let mut adam = Adam::new(0.1);
        for _ in 0..100 {
            adam.next_step();
            let g = p.value().scale(2.0);
            p.accumulate(&g).unwrap();
            adam.step(&mut p);
        }
        assert!(p.value().data()[0].abs() < 0.05, "{}", p.value().data()[0]);
    }

    #[test]
    fn sgd_step_descends_quadratic() {
        // Minimise f(x) = x² from x = 1: gradient is 2x.
        let mut p = Param::new(Tensor::ones(&[1]));
        let sgd = Sgd::from_config(&TrainConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            ..TrainConfig::default()
        });
        for _ in 0..50 {
            let g = p.value().scale(2.0);
            p.accumulate(&g).unwrap();
            sgd.step(&mut p);
        }
        assert!(p.value().data()[0].abs() < 1e-3);
    }
}
