use pipetune_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::DnnError;

/// Feature storage for a dataset: dense image tensors or token sequences.
#[derive(Debug, Clone, PartialEq)]
pub enum Features {
    /// `[n, channels, height, width]` image tensor.
    Images(Tensor),
    /// One token-id sequence per example (all the same length for batching).
    Tokens(Vec<Vec<u32>>),
}

impl Features {
    /// Number of examples stored.
    pub fn len(&self) -> usize {
        match self {
            Features::Images(t) => t.shape().dims().first().copied().unwrap_or(0),
            Features::Tokens(seqs) => seqs.len(),
        }
    }

    /// Returns `true` when there are no examples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Short static name used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Features::Images(_) => "image",
            Features::Tokens(_) => "token",
        }
    }
}

/// A labelled dataset: features plus one class label per example.
///
/// This is the paper's "dataset" half of a workload tuple (§3.3).
///
/// # Example
///
/// ```
/// use pipetune_dnn::{Dataset, Features};
/// use pipetune_tensor::Tensor;
///
/// let data = Dataset::new(
///     Features::Images(Tensor::zeros(&[4, 1, 8, 8])),
///     vec![0, 1, 0, 1],
///     2,
/// )?;
/// assert_eq!(data.len(), 4);
/// # Ok::<(), pipetune_dnn::DnnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Features,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Builds a dataset, validating feature/label agreement.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidDataset`] when the counts disagree, the
    /// dataset is empty, a label is out of range, or token sequences have
    /// inconsistent lengths.
    pub fn new(
        features: Features,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DnnError> {
        if features.len() != labels.len() {
            return Err(DnnError::InvalidDataset {
                reason: format!("{} features but {} labels", features.len(), labels.len()),
            });
        }
        if features.is_empty() {
            return Err(DnnError::InvalidDataset { reason: "dataset is empty".into() });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(DnnError::InvalidDataset {
                reason: format!("label {bad} out of range for {num_classes} classes"),
            });
        }
        if let Features::Tokens(seqs) = &features {
            let len0 = seqs[0].len();
            if seqs.iter().any(|s| s.len() != len0) {
                return Err(DnnError::InvalidDataset {
                    reason: "token sequences have inconsistent lengths".into(),
                });
            }
        }
        Ok(Dataset { features, labels, num_classes })
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when the dataset has no examples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of distinct class labels.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The stored features.
    pub fn features(&self) -> &Features {
        &self.features
    }

    /// The label of each example.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Gathers image rows by index into an owned mini-batch tensor.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::WrongFeatureKind`] on token datasets.
    pub fn gather_images(&self, idx: &[usize]) -> Result<Tensor, DnnError> {
        match &self.features {
            Features::Images(t) => {
                let dims = t.shape().dims();
                let row: usize = dims[1..].iter().product();
                let mut out = Vec::with_capacity(idx.len() * row);
                for &i in idx {
                    out.extend_from_slice(&t.data()[i * row..(i + 1) * row]);
                }
                let mut bdims = dims.to_vec();
                bdims[0] = idx.len();
                Ok(Tensor::from_vec(out, &bdims)?)
            }
            f => Err(DnnError::WrongFeatureKind { expected: "image", actual: f.kind() }),
        }
    }

    /// Gathers token sequences by index.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::WrongFeatureKind`] on image datasets.
    pub fn gather_tokens(&self, idx: &[usize]) -> Result<Vec<Vec<u32>>, DnnError> {
        match &self.features {
            Features::Tokens(seqs) => Ok(idx.iter().map(|&i| seqs[i].clone()).collect()),
            f => Err(DnnError::WrongFeatureKind { expected: "token", actual: f.kind() }),
        }
    }

    /// Gathers labels by index.
    pub fn gather_labels(&self, idx: &[usize]) -> Vec<usize> {
        idx.iter().map(|&i| self.labels[i]).collect()
    }
}

/// Shuffled mini-batch index plan for one epoch.
///
/// Produces index slices of at most `batch_size` examples covering the whole
/// dataset exactly once, in a seeded random order.
#[derive(Debug, Clone)]
pub struct BatchIndices {
    order: Vec<usize>,
    batch_size: usize,
}

impl BatchIndices {
    /// Plans one epoch of shuffled batches.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] when `batch_size` is zero.
    pub fn plan<R: Rng>(n: usize, batch_size: usize, rng: &mut R) -> Result<Self, DnnError> {
        if batch_size == 0 {
            return Err(DnnError::InvalidConfig { reason: "batch size must be positive".into() });
        }
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        Ok(BatchIndices { order, batch_size })
    }

    /// Number of batches in the plan.
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Iterator over index slices, one per batch.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        self.order.chunks(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn image_dataset(n: usize) -> Dataset {
        let t = Tensor::from_vec((0..n * 4).map(|x| x as f32).collect(), &[n, 1, 2, 2]).unwrap();
        Dataset::new(Features::Images(t), (0..n).map(|i| i % 2).collect(), 2).unwrap()
    }

    #[test]
    fn rejects_label_out_of_range() {
        let t = Tensor::zeros(&[2, 1, 2, 2]);
        let err = Dataset::new(Features::Images(t), vec![0, 5], 2).unwrap_err();
        assert!(matches!(err, DnnError::InvalidDataset { .. }));
    }

    #[test]
    fn rejects_count_mismatch_and_empty() {
        let t = Tensor::zeros(&[2, 1, 2, 2]);
        assert!(Dataset::new(Features::Images(t.clone()), vec![0], 2).is_err());
        let empty = Tensor::zeros(&[0, 1, 2, 2]);
        assert!(Dataset::new(Features::Images(empty), vec![], 2).is_err());
    }

    #[test]
    fn rejects_ragged_token_sequences() {
        let f = Features::Tokens(vec![vec![1, 2], vec![3]]);
        assert!(Dataset::new(f, vec![0, 1], 2).is_err());
    }

    #[test]
    fn gather_images_picks_rows() {
        let d = image_dataset(3);
        let b = d.gather_images(&[2, 0]).unwrap();
        assert_eq!(b.shape().dims(), &[2, 1, 2, 2]);
        assert_eq!(&b.data()[..4], &[8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn gather_wrong_kind_errors() {
        let d = image_dataset(2);
        assert!(matches!(d.gather_tokens(&[0]), Err(DnnError::WrongFeatureKind { .. })));
    }

    #[test]
    fn batch_plan_covers_every_index_once() {
        let mut rng = StdRng::seed_from_u64(4);
        let plan = BatchIndices::plan(10, 3, &mut rng).unwrap();
        assert_eq!(plan.num_batches(), 4);
        let mut seen: Vec<usize> = plan.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn batch_plan_rejects_zero_batch() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(BatchIndices::plan(10, 0, &mut rng).is_err());
    }
}
