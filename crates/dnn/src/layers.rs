//! Trainable layers: dense, conv2d, pooling, ReLU, dropout, flatten, embedding.
//!
//! Each layer caches whatever its backward pass needs during `forward`, then
//! `backward` accumulates parameter gradients in-place and returns the
//! gradient with respect to its input. Layers are plain structs, composed
//! explicitly by the model implementations in [`crate::models`].

use pipetune_tensor::{
    conv2d, conv2d_backward, conv2d_gemm_with, max_pool2d, max_pool2d_backward, Tensor,
    TensorError, Workspace,
};
use rand::Rng;

use crate::param::{Param, ParamVisitor};
use crate::DnnError;

/// Fully connected layer: `y = x·W + b` on `[batch, in] → [batch, out]`.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    /// Grow-only scratch arena for the GEMM kernels; clones start empty
    /// (see the workspace lifetime rules in `docs/performance.md`).
    ws: Workspace,
}

impl Dense {
    /// Creates a dense layer with He-style `N(0, (2/fan_in)½)` initialisation.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        Dense {
            weight: Param::new(Tensor::randn(&[in_dim, out_dim], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_dim])),
            cached_input: None,
            ws: Workspace::new(),
        }
    }

    /// Forward pass; caches the input for backprop when `train` is set.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the matrix product.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let mut y = x.matmul_with(self.weight.value(), &mut self.ws)?;
        y.add_row_broadcast_inplace(self.bias.value())?;
        self.cached_input = train.then(|| x.clone());
        Ok(y)
    }

    /// Backward pass: accumulates weight/bias gradients, returns `∂L/∂x`.
    ///
    /// Both products run the fused transposed kernels
    /// ([`Tensor::matmul_tn`]/[`Tensor::matmul_nt`] semantics), so no
    /// transposed weight or input matrix is materialised per step.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when called before a training-mode
    /// forward pass; propagates shape errors otherwise.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let x = self.cached_input.as_ref().ok_or(TensorError::Empty)?;
        let gw = x.matmul_tn_with(grad_out, &mut self.ws)?;
        let gb = grad_out.sum_rows()?;
        self.weight.accumulate(&gw)?;
        self.bias.accumulate(&gb)?;
        grad_out.matmul_nt_with(self.weight.value(), &mut self.ws)
    }

    /// Visits the layer's parameters (weight then bias).
    pub fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        v.visit(&mut self.weight);
        v.visit(&mut self.bias);
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// Valid, stride-1 2-D convolution layer on NCHW tensors.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    /// Scratch arena for the im2col + GEMM route; clones start empty.
    ws: Workspace,
}

impl Conv2d {
    /// Creates a conv layer `[out_ch, in_ch, k, k]` with He initialisation.
    pub fn new<R: Rng>(in_ch: usize, out_ch: usize, k: usize, rng: &mut R) -> Self {
        let fan_in = (in_ch * k * k) as f32;
        let std = (2.0 / fan_in).sqrt();
        Conv2d {
            weight: Param::new(Tensor::randn(&[out_ch, in_ch, k, k], std, rng)),
            bias: Param::new(Tensor::zeros(&[out_ch])),
            cached_input: None,
            ws: Workspace::new(),
        }
    }

    /// Forward pass; caches the input when `train` is set.
    ///
    /// Batches of 8+ take the im2col + GEMM route ([`conv2d_gemm_with`]),
    /// which amortises the unfold cost and recycles its scratch from the
    /// layer's [`Workspace`]; small batches stay on the direct loops.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`conv2d`].
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let batch = x.shape().dims().first().copied().unwrap_or(0);
        let y = if batch >= 8 {
            conv2d_gemm_with(x, self.weight.value(), self.bias.value(), &mut self.ws)?
        } else {
            conv2d(x, self.weight.value(), self.bias.value())?
        };
        self.cached_input = train.then(|| x.clone());
        Ok(y)
    }

    /// Backward pass: accumulates kernel/bias gradients, returns `∂L/∂x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when called before a training-mode
    /// forward pass; propagates shape errors otherwise.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let x = self.cached_input.as_ref().ok_or(TensorError::Empty)?;
        let grads = conv2d_backward(x, self.weight.value(), grad_out)?;
        self.weight.accumulate(&grads.grad_weight)?;
        self.bias.accumulate(&grads.grad_bias)?;
        Ok(grads.grad_input)
    }

    /// Visits the layer's parameters (kernel then bias).
    pub fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        v.visit(&mut self.weight);
        v.visit(&mut self.bias);
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// Non-overlapping max pooling layer.
#[derive(Debug, Clone, Default)]
pub struct MaxPool2d {
    k: usize,
    cached: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a `k×k` pooling layer.
    pub fn new(k: usize) -> Self {
        MaxPool2d { k, cached: None }
    }

    /// Forward pass; caches argmax indices when `train` is set.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`max_pool2d`].
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        let (y, idx) = max_pool2d(x, self.k)?;
        self.cached = train.then(|| (idx, x.shape().dims().to_vec()));
        Ok(y)
    }

    /// Backward pass using the cached indices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when called before a training-mode
    /// forward pass.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let (idx, dims) = self.cached.as_ref().ok_or(TensorError::Empty)?;
        max_pool2d_backward(grad_out, idx, dims)
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }

    /// Forward pass; caches the activation mask when `train` is set.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    /// Backward pass: zeroes gradients where the forward input was ≤ 0.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when called before a training-mode
    /// forward pass; [`TensorError::SizeMismatch`] on a size change.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let mask = self.mask.as_ref().ok_or(TensorError::Empty)?;
        if mask.len() != grad_out.len() {
            return Err(TensorError::SizeMismatch { expected: mask.len(), actual: grad_out.len() });
        }
        let data = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape().dims())
    }
}

/// Inverted dropout: zeroes a `rate` fraction of activations during training
/// and rescales the survivors by `1/(1-rate)`, so inference needs no scaling.
///
/// This is the paper's second hyperparameter (dropout rate ∈ [0, 0.5]).
#[derive(Debug, Clone)]
pub struct Dropout {
    rate: f32,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidConfig`] unless `0 ≤ rate < 1`.
    pub fn new(rate: f32) -> Result<Self, DnnError> {
        if !(0.0..1.0).contains(&rate) {
            return Err(DnnError::InvalidConfig {
                reason: format!("dropout rate {rate} outside [0, 1)"),
            });
        }
        Ok(Dropout { rate, mask: None })
    }

    /// The configured drop rate.
    pub fn rate(&self) -> f32 {
        self.rate
    }

    /// Forward pass. In training mode draws a fresh mask from `rng`.
    pub fn forward<R: Rng>(&mut self, x: &Tensor, train: bool, rng: &mut R) -> Tensor {
        if !train || self.rate == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mask: Vec<f32> =
            (0..x.len()).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }).collect();
        let data = x.data().iter().zip(&mask).map(|(&v, &m)| v * m).collect();
        let out = Tensor::from_vec(data, x.shape().dims()).expect("same shape");
        self.mask = Some(mask);
        out
    }

    /// Backward pass: applies the cached mask (identity when dropout was inactive).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::SizeMismatch`] when the gradient size changed.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        match &self.mask {
            None => Ok(grad_out.clone()),
            Some(mask) => {
                if mask.len() != grad_out.len() {
                    return Err(TensorError::SizeMismatch {
                        expected: mask.len(),
                        actual: grad_out.len(),
                    });
                }
                let data = grad_out.data().iter().zip(mask).map(|(&g, &m)| g * m).collect();
                Tensor::from_vec(data, grad_out.shape().dims())
            }
        }
    }
}

/// Flattens `[batch, ...]` to `[batch, features]`, remembering the original
/// shape for the backward pass.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    dims: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { dims: None }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] on scalars.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor, TensorError> {
        if x.shape().rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        self.dims = Some(x.shape().dims().to_vec());
        let n = x.shape().dims()[0];
        let rest: usize = x.shape().dims()[1..].iter().product();
        x.reshape(&[n, rest])
    }

    /// Backward pass: restores the cached shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor, TensorError> {
        let dims = self.dims.as_ref().ok_or(TensorError::Empty)?;
        grad_out.reshape(dims)
    }
}

/// Token-embedding table: maps token ids to dense vectors.
///
/// The paper's third hyperparameter is the embedding dimension (50–300 for
/// News20); this layer makes that dimension a real knob.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: Param,
    vocab: usize,
    dim: usize,
    cached_tokens: Option<Vec<u32>>,
}

impl Embedding {
    /// Creates a `vocab × dim` embedding table with small normal init.
    pub fn new<R: Rng>(vocab: usize, dim: usize, rng: &mut R) -> Self {
        Embedding {
            table: Param::new(Tensor::randn(&[vocab, dim], 0.1, rng)),
            vocab,
            dim,
            cached_tokens: None,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Looks up a batch of equal-length sequences, producing
    /// `[batch, seq_len, dim]` (flattened row-major).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for unknown token ids.
    pub fn forward(&mut self, batch: &[Vec<u32>], train: bool) -> Result<Tensor, TensorError> {
        let b = batch.len();
        let t = batch.first().map_or(0, Vec::len);
        let mut out = Vec::with_capacity(b * t * self.dim);
        let mut flat = Vec::with_capacity(b * t);
        for seq in batch {
            for &tok in seq {
                let tok_us = tok as usize;
                if tok_us >= self.vocab {
                    return Err(TensorError::IndexOutOfBounds {
                        axis: 0,
                        index: tok_us,
                        len: self.vocab,
                    });
                }
                out.extend_from_slice(
                    &self.table.value().data()[tok_us * self.dim..(tok_us + 1) * self.dim],
                );
                flat.push(tok);
            }
        }
        self.cached_tokens = train.then_some(flat);
        Tensor::from_vec(out, &[b, t, self.dim])
    }

    /// Backward pass: scatters `grad_out` rows back into the table gradient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] before a training-mode forward and
    /// [`TensorError::SizeMismatch`] when sizes disagree.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<(), TensorError> {
        let tokens = self.cached_tokens.as_ref().ok_or(TensorError::Empty)?;
        if grad_out.len() != tokens.len() * self.dim {
            return Err(TensorError::SizeMismatch {
                expected: tokens.len() * self.dim,
                actual: grad_out.len(),
            });
        }
        let mut gtab = Tensor::zeros(&[self.vocab, self.dim]);
        {
            let buf = gtab.data_mut();
            for (row, &tok) in tokens.iter().enumerate() {
                let dst = tok as usize * self.dim;
                let src = row * self.dim;
                for d in 0..self.dim {
                    buf[dst + d] += grad_out.data()[src + d];
                }
            }
        }
        self.table.accumulate(&gtab)
    }

    /// Visits the embedding table parameter.
    pub fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        v.visit(&mut self.table);
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_backward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let y = layer.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[4, 2]);
        let gx = layer.backward(&Tensor::ones(&[4, 2])).unwrap();
        assert_eq!(gx.shape().dims(), &[4, 3]);
    }

    #[test]
    fn dense_backward_before_forward_errors() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Dense::new(3, 2, &mut rng);
        assert!(layer.backward(&Tensor::ones(&[4, 2])).is_err());
    }

    #[test]
    fn dense_gradient_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::randn(&[5, 3], 1.0, &mut rng);
        // Loss = sum(dense(x)) so grad_out = ones.
        let _ = layer.forward(&x, true).unwrap();
        layer.backward(&Tensor::ones(&[5, 2])).unwrap();
        let analytic = layer.weight.grad().clone();
        let eps = 1e-2f32;
        for probe in [0usize, 3, 5] {
            let orig = layer.weight.value().data()[probe];
            layer.weight.value_mut().data_mut()[probe] = orig + eps;
            let fp = layer.forward(&x, false).unwrap().sum();
            layer.weight.value_mut().data_mut()[probe] = orig - eps;
            let fm = layer.forward(&x, false).unwrap().sum();
            layer.weight.value_mut().data_mut()[probe] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - analytic.data()[probe]).abs() < 0.02 * (1.0 + num.abs()));
        }
    }

    #[test]
    fn relu_masks_negative_gradients() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        let y = relu.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0]);
        let g = relu.backward(&Tensor::ones(&[2])).unwrap();
        assert_eq!(g.data(), &[0.0, 1.0]);
    }

    #[test]
    fn dropout_preserves_expectation_and_is_identity_in_eval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut drop = Dropout::new(0.5).unwrap();
        let x = Tensor::ones(&[10_000]);
        let y = drop.forward(&x, true, &mut rng);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        let eval = drop.forward(&x, false, &mut rng);
        assert_eq!(eval.data(), x.data());
    }

    #[test]
    fn dropout_rejects_invalid_rate() {
        assert!(Dropout::new(1.0).is_err());
        assert!(Dropout::new(-0.1).is_err());
        assert!(Dropout::new(0.0).is_ok());
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut f = Flatten::new();
        let x = Tensor::ones(&[2, 3, 4]);
        let y = f.forward(&x).unwrap();
        assert_eq!(y.shape().dims(), &[2, 12]);
        let back = f.backward(&y).unwrap();
        assert_eq!(back.shape().dims(), &[2, 3, 4]);
    }

    #[test]
    fn embedding_lookup_and_scatter() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut emb = Embedding::new(5, 3, &mut rng);
        let batch = vec![vec![1u32, 4], vec![0, 0]];
        let y = emb.forward(&batch, true).unwrap();
        assert_eq!(y.shape().dims(), &[2, 2, 3]);
        emb.backward(&Tensor::ones(&[2, 2, 3])).unwrap();
        // Token 0 appears twice → gradient 2 in each dim.
        assert_eq!(emb.table.grad().data()[0], 2.0);
        // Token 2 never appears → zero gradient.
        assert_eq!(emb.table.grad().data()[2 * 3], 0.0);
    }

    #[test]
    fn embedding_rejects_unknown_token() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut emb = Embedding::new(5, 3, &mut rng);
        assert!(emb.forward(&[vec![7u32]], false).is_err());
    }

    #[test]
    fn maxpool_layer_routes_gradient() {
        let mut pool = MaxPool2d::new(2);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = pool.forward(&x, true).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 2, 2]);
        let gx = pool.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        assert_eq!(gx.sum(), 4.0);
    }
}
