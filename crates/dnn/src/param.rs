use pipetune_tensor::{Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// A trainable parameter: value, accumulated gradient and momentum buffer.
///
/// Layers own their `Param`s; the [`crate::Sgd`] optimizer visits them via
/// [`crate::Model::visit_params`] so optimizer state lives next to the data it
/// updates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    value: Tensor,
    grad: Tensor,
    velocity: Tensor,
    /// Second-moment accumulator (Adam); allocated lazily on first use.
    #[serde(default)]
    second_moment: Option<Tensor>,
}

impl Param {
    /// Wraps an initial value; gradient and velocity start at zero.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().dims());
        let velocity = Tensor::zeros(value.shape().dims());
        Param { value, grad, velocity, second_moment: None }
    }

    /// Current value.
    pub fn value(&self) -> &Tensor {
        &self.value
    }

    /// Mutable access to the value (used by the optimizer).
    pub fn value_mut(&mut self) -> &mut Tensor {
        &mut self.value
    }

    /// Accumulated gradient since the last [`Param::zero_grad`].
    pub fn grad(&self) -> &Tensor {
        &self.grad
    }

    /// Momentum buffer maintained by SGD.
    pub fn velocity_mut(&mut self) -> &mut Tensor {
        &mut self.velocity
    }

    /// Adds `g` into the accumulated gradient.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `g` is shaped differently
    /// from the parameter value.
    pub fn accumulate(&mut self, g: &Tensor) -> Result<(), TensorError> {
        self.grad.axpy(1.0, g)
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` when the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Applies one Adam step (Kingma & Ba) and clears the gradient.
    ///
    /// `m ← β₁m + (1−β₁)g`, `v ← β₂v + (1−β₂)g²`, bias-corrected by step
    /// count `t`, then `value −= lr·m̂/(√v̂ + ε)`. The first-moment buffer
    /// reuses the SGD momentum storage.
    pub fn adam_step(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32, t: u64) {
        if self.second_moment.is_none() {
            self.second_moment = Some(Tensor::zeros(self.value.shape().dims()));
        }
        let n = self.value.len();
        let t = t.max(1) as i32;
        let bc1 = 1.0 - beta1.powi(t);
        let bc2 = 1.0 - beta2.powi(t);
        let value = self.value.data_mut();
        let grad = self.grad.data_mut();
        let m = self.velocity.data_mut();
        let v = self.second_moment.as_mut().expect("allocated above").data_mut();
        for i in 0..n {
            let g = grad[i];
            m[i] = beta1 * m[i] + (1.0 - beta1) * g;
            v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            value[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            grad[i] = 0.0;
        }
    }

    /// Applies one SGD-with-momentum step and clears the gradient.
    ///
    /// `v ← momentum·v − lr·(grad + weight_decay·value)`, then `value += v`.
    pub fn sgd_step(&mut self, lr: f32, momentum: f32, weight_decay: f32) {
        let n = self.value.len();
        let value = self.value.data_mut();
        let grad = self.grad.data_mut();
        let vel = self.velocity.data_mut();
        for i in 0..n {
            let g = grad[i] + weight_decay * value[i];
            vel[i] = momentum * vel[i] - lr * g;
            value[i] += vel[i];
            grad[i] = 0.0;
        }
    }
}

/// Callback used to iterate over every [`Param`] in a model.
pub trait ParamVisitor {
    /// Visits one parameter.
    fn visit(&mut self, param: &mut Param);
}

impl<F: FnMut(&mut Param)> ParamVisitor for F {
    fn visit(&mut self, param: &mut Param) {
        self(param)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_step_without_momentum_is_plain_gradient_descent() {
        let mut p = Param::new(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        p.accumulate(&Tensor::from_vec(vec![0.5, -0.5], &[2]).unwrap()).unwrap();
        p.sgd_step(0.1, 0.0, 0.0);
        assert_eq!(p.value().data(), &[0.95, 2.05]);
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
    }

    #[test]
    fn momentum_accelerates_repeated_gradients() {
        let mut p = Param::new(Tensor::zeros(&[1]));
        for _ in 0..2 {
            p.accumulate(&Tensor::ones(&[1])).unwrap();
            p.sgd_step(0.1, 0.9, 0.0);
        }
        // step1: v=-0.1, x=-0.1; step2: v=-0.9*0.1-0.1=-0.19, x=-0.29
        assert!((p.value().data()[0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_an_ill_conditioned_quadratic() {
        // f(x, y) = 100x² + y²: plain SGD with a safe lr crawls along y;
        // Adam's per-coordinate scaling races down both.
        let run = |adam: bool| -> f32 {
            let mut p = Param::new(Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap());
            for t in 1..=200u64 {
                let (x, y) = (p.value().data()[0], p.value().data()[1]);
                let g = Tensor::from_vec(vec![200.0 * x, 2.0 * y], &[2]).unwrap();
                p.accumulate(&g).unwrap();
                if adam {
                    p.adam_step(0.05, 0.9, 0.999, 1e-8, t);
                } else {
                    p.sgd_step(0.004, 0.0, 0.0); // largest stable lr ≈ 1/200
                }
            }
            p.value().norm_sq()
        };
        let adam = run(true);
        let sgd = run(false);
        assert!(adam < sgd * 0.5, "adam {adam} should beat sgd {sgd}");
    }

    #[test]
    fn adam_clears_gradients_like_sgd() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.accumulate(&Tensor::ones(&[2])).unwrap();
        p.adam_step(0.01, 0.9, 0.999, 1e-8, 1);
        assert_eq!(p.grad().data(), &[0.0, 0.0]);
        // First step with bias correction moves by ≈ lr.
        assert!((p.value().data()[0] - (1.0 - 0.01)).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(Tensor::ones(&[1]));
        p.sgd_step(0.1, 0.0, 0.5);
        assert!((p.value().data()[0] - 0.95).abs() < 1e-6);
    }
}
