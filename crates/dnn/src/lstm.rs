//! A single-layer LSTM with full backpropagation through time.
//!
//! This powers the paper's `LSTM` Type-II workload (News20 text
//! classification). Only the final hidden state feeds the classifier head, so
//! the backward pass starts from `∂L/∂h_T` and unrolls backwards through every
//! timestep, producing gradients for both weights and the embedded inputs.

use pipetune_tensor::{Tensor, TensorError, Workspace};
use rand::Rng;

use crate::param::{Param, ParamVisitor};

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep cache recorded during a training-mode forward pass.
#[derive(Debug, Clone)]
struct StepCache {
    x: Tensor,      // [b, d] input at this step
    h_prev: Tensor, // [b, h]
    c_prev: Tensor, // [b, h]
    i: Tensor,      // [b, h] input gate (post-sigmoid)
    f: Tensor,      // forget gate
    g: Tensor,      // candidate (post-tanh)
    o: Tensor,      // output gate
    c: Tensor,      // new cell state
}

/// Single-layer LSTM over batches of equal-length embedded sequences.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wx: Param, // [d, 4h]
    wh: Param, // [h, 4h]
    bias: Param, // [4h]
    input_dim: usize,
    hidden: usize,
    cache: Option<Vec<StepCache>>,
    /// Scratch arena shared by every per-step GEMM; clones start empty.
    ws: Workspace,
}

impl LstmCell {
    /// Creates an LSTM with `input_dim` inputs and `hidden` units.
    ///
    /// The forget-gate bias is initialised to 1.0, the standard trick that
    /// keeps early training stable.
    pub fn new<R: Rng>(input_dim: usize, hidden: usize, rng: &mut R) -> Self {
        let std_x = (1.0 / input_dim as f32).sqrt();
        let std_h = (1.0 / hidden as f32).sqrt();
        let mut bias = Tensor::zeros(&[4 * hidden]);
        // Gate order: [i, f, g, o]; forget gate occupies the second block.
        for j in hidden..2 * hidden {
            bias.data_mut()[j] = 1.0;
        }
        LstmCell {
            wx: Param::new(Tensor::randn(&[input_dim, 4 * hidden], std_x, rng)),
            wh: Param::new(Tensor::randn(&[hidden, 4 * hidden], std_h, rng)),
            bias: Param::new(bias),
            input_dim,
            hidden,
            cache: None,
            ws: Workspace::new(),
        }
    }

    /// Hidden-state dimensionality.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs the LSTM over `[batch, time, input_dim]` and returns the final
    /// hidden state `[batch, hidden]`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the input is not rank 3 with the configured
    /// feature dimension.
    pub fn forward(&mut self, x: &Tensor, train: bool) -> Result<Tensor, TensorError> {
        if x.shape().rank() != 3 {
            return Err(TensorError::RankMismatch { expected: 3, actual: x.shape().rank() });
        }
        let (b, t, d) = (x.shape().dims()[0], x.shape().dims()[1], x.shape().dims()[2]);
        if d != self.input_dim {
            return Err(TensorError::ShapeMismatch {
                expected: vec![b, t, self.input_dim],
                actual: x.shape().dims().to_vec(),
            });
        }
        let h = self.hidden;
        let mut h_t = Tensor::zeros(&[b, h]);
        let mut c_t = Tensor::zeros(&[b, h]);
        let mut cache = train.then(Vec::new);
        for step in 0..t {
            // Slice x[:, step, :] into [b, d].
            let mut xs = Vec::with_capacity(b * d);
            for bi in 0..b {
                let off = (bi * t + step) * d;
                xs.extend_from_slice(&x.data()[off..off + d]);
            }
            let x_step = Tensor::from_vec(xs, &[b, d])?;
            // z = x·Wx + h·Wh + b, fused in place: `axpy(1.0, ·)` and the
            // in-place bias broadcast are bit-identical to the allocating
            // `add`/`add_row_broadcast` chain they replaced.
            let mut z = x_step.matmul_with(self.wx.value(), &mut self.ws)?;
            z.axpy(1.0, &h_t.matmul_with(self.wh.value(), &mut self.ws)?)?;
            z.add_row_broadcast_inplace(self.bias.value())?;
            let mut i_g = Tensor::zeros(&[b, h]);
            let mut f_g = Tensor::zeros(&[b, h]);
            let mut g_g = Tensor::zeros(&[b, h]);
            let mut o_g = Tensor::zeros(&[b, h]);
            for bi in 0..b {
                for j in 0..h {
                    let base = bi * 4 * h;
                    i_g.data_mut()[bi * h + j] = sigmoid(z.data()[base + j]);
                    f_g.data_mut()[bi * h + j] = sigmoid(z.data()[base + h + j]);
                    g_g.data_mut()[bi * h + j] = z.data()[base + 2 * h + j].tanh();
                    o_g.data_mut()[bi * h + j] = sigmoid(z.data()[base + 3 * h + j]);
                }
            }
            let c_new = f_g.mul(&c_t)?.add(&i_g.mul(&g_g)?)?;
            let h_new = o_g.mul(&c_new.map(f32::tanh))?;
            if let Some(cache) = cache.as_mut() {
                cache.push(StepCache {
                    x: x_step,
                    h_prev: h_t.clone(),
                    c_prev: c_t.clone(),
                    i: i_g,
                    f: f_g,
                    g: g_g,
                    o: o_g,
                    c: c_new.clone(),
                });
            }
            h_t = h_new;
            c_t = c_new;
        }
        self.cache = cache;
        Ok(h_t)
    }

    /// Backpropagates from the gradient of the final hidden state, returning
    /// the gradient with respect to the embedded input `[batch, time, dim]`.
    ///
    /// Per-element gate gradients are clipped to ±5 to keep long unrolls
    /// stable, mirroring standard practice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] before a training-mode forward pass.
    pub fn backward(&mut self, grad_h_last: &Tensor) -> Result<Tensor, TensorError> {
        let cache = self.cache.take().ok_or(TensorError::Empty)?;
        let t = cache.len();
        let (b, h) = (grad_h_last.shape().dims()[0], self.hidden);
        let d = self.input_dim;
        let mut dh = grad_h_last.clone();
        let mut dc = Tensor::zeros(&[b, h]);
        let mut dx_all = Tensor::zeros(&[b, t, d]);
        let mut gwx = Tensor::zeros(&[d, 4 * h]);
        let mut gwh = Tensor::zeros(&[h, 4 * h]);
        let mut gb = Tensor::zeros(&[4 * h]);
        for (step, sc) in cache.iter().enumerate().rev() {
            let tanh_c = sc.c.map(f32::tanh);
            // dc += dh ⊙ o ⊙ (1 − tanh²c)
            let one_minus_t2 = tanh_c.map(|v| 1.0 - v * v);
            dc.axpy(1.0, &dh.mul(&sc.o)?.mul(&one_minus_t2)?)?;
            let do_ = dh.mul(&tanh_c)?;
            let di = dc.mul(&sc.g)?;
            let df = dc.mul(&sc.c_prev)?;
            let dg = dc.mul(&sc.i)?;
            let dc_prev = dc.mul(&sc.f)?;
            // Pre-activation gradients, clipped for stability.
            let clip = |v: f32| v.clamp(-5.0, 5.0);
            let dzi = di.zip_with(&sc.i, |dv, iv| clip(dv * iv * (1.0 - iv)))?;
            let dzf = df.zip_with(&sc.f, |dv, fv| clip(dv * fv * (1.0 - fv)))?;
            let dzg = dg.zip_with(&sc.g, |dv, gv| clip(dv * (1.0 - gv * gv)))?;
            let dzo = do_.zip_with(&sc.o, |dv, ov| clip(dv * ov * (1.0 - ov)))?;
            // Pack [b, 4h] gate-gradient matrix in [i, f, g, o] order.
            let mut dz = Tensor::zeros(&[b, 4 * h]);
            for bi in 0..b {
                for j in 0..h {
                    dz.data_mut()[bi * 4 * h + j] = dzi.data()[bi * h + j];
                    dz.data_mut()[bi * 4 * h + h + j] = dzf.data()[bi * h + j];
                    dz.data_mut()[bi * 4 * h + 2 * h + j] = dzg.data()[bi * h + j];
                    dz.data_mut()[bi * 4 * h + 3 * h + j] = dzo.data()[bi * h + j];
                }
            }
            gwx.axpy(1.0, &sc.x.matmul_tn_with(&dz, &mut self.ws)?)?;
            gwh.axpy(1.0, &sc.h_prev.matmul_tn_with(&dz, &mut self.ws)?)?;
            gb.axpy(1.0, &dz.sum_rows()?)?;
            let dx_step = dz.matmul_nt_with(self.wx.value(), &mut self.ws)?;
            for bi in 0..b {
                let dst = (bi * t + step) * d;
                let src = bi * d;
                for k in 0..d {
                    dx_all.data_mut()[dst + k] += dx_step.data()[src + k];
                }
            }
            dh = dz.matmul_nt_with(self.wh.value(), &mut self.ws)?;
            dc = dc_prev;
        }
        self.wx.accumulate(&gwx)?;
        self.wh.accumulate(&gwh)?;
        self.bias.accumulate(&gb)?;
        Ok(dx_all)
    }

    /// Visits the LSTM's parameters (input weights, recurrent weights, bias).
    pub fn visit_params(&mut self, v: &mut dyn ParamVisitor) {
        v.visit(&mut self.wx);
        v.visit(&mut self.wh);
        v.visit(&mut self.bias);
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.wx.len() + self.wh.len() + self.bias.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_and_determinism() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let mut a = LstmCell::new(4, 6, &mut r1);
        let mut b = LstmCell::new(4, 6, &mut r2);
        let x = Tensor::randn(&[3, 5, 4], 1.0, &mut r1);
        let ya = a.forward(&x, false).unwrap();
        let yb = b.forward(&x, false).unwrap();
        assert_eq!(ya.shape().dims(), &[3, 6]);
        assert_eq!(ya, yb);
    }

    #[test]
    fn backward_requires_training_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cell = LstmCell::new(2, 3, &mut rng);
        assert!(cell.backward(&Tensor::ones(&[1, 3])).is_err());
    }

    #[test]
    fn weight_gradient_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut cell = LstmCell::new(3, 4, &mut rng);
        let x = Tensor::randn(&[2, 3, 3], 0.5, &mut rng);
        // Loss = sum(h_T).
        let _h = cell.forward(&x, true).unwrap();
        cell.backward(&Tensor::ones(&[2, 4])).unwrap();
        let analytic = cell.wx.grad().clone();
        let eps = 1e-2f32;
        for probe in [0usize, 7, 11] {
            let orig = cell.wx.value().data()[probe];
            cell.wx.value_mut().data_mut()[probe] = orig + eps;
            let fp = cell.forward(&x, false).unwrap().sum();
            cell.wx.value_mut().data_mut()[probe] = orig - eps;
            let fm = cell.forward(&x, false).unwrap().sum();
            cell.wx.value_mut().data_mut()[probe] = orig;
            let num = (fp - fm) / (2.0 * eps);
            let ana = analytic.data()[probe];
            assert!((num - ana).abs() < 0.05 * (1.0 + ana.abs()), "probe {probe}: {num} vs {ana}");
        }
    }

    #[test]
    fn input_gradient_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut cell = LstmCell::new(2, 3, &mut rng);
        let x = Tensor::randn(&[1, 4, 2], 0.5, &mut rng);
        let _ = cell.forward(&x, true).unwrap();
        let dx = cell.backward(&Tensor::ones(&[1, 3])).unwrap();
        let eps = 1e-2f32;
        for probe in [0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data_mut()[probe] += eps;
            let mut xm = x.clone();
            xm.data_mut()[probe] -= eps;
            let fp = cell.forward(&xp, false).unwrap().sum();
            let fm = cell.forward(&xm, false).unwrap().sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = dx.data()[probe];
            assert!((num - ana).abs() < 0.05 * (1.0 + ana.abs()), "probe {probe}: {num} vs {ana}");
        }
    }

    #[test]
    fn rejects_wrong_input_dim() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cell = LstmCell::new(4, 6, &mut rng);
        let x = Tensor::zeros(&[3, 5, 2]);
        assert!(cell.forward(&x, false).is_err());
    }
}
