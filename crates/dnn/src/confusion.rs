//! Classification evaluation beyond plain accuracy: confusion matrix,
//! per-class precision/recall and macro-F1.
//!
//! The paper reports accuracy only; these metrics support deeper analysis of
//! what the tuners' selected models actually learned (used by the examples
//! and tests to verify that accuracy gains are not single-class artefacts).

use crate::DnnError;

/// A `classes × classes` confusion matrix; rows are true labels, columns are
/// predictions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds a matrix from parallel prediction/label slices.
    ///
    /// # Errors
    ///
    /// Returns [`DnnError::InvalidDataset`] when lengths differ, the inputs
    /// are empty, or any index is out of range.
    pub fn from_predictions(
        predictions: &[usize],
        labels: &[usize],
        classes: usize,
    ) -> Result<Self, DnnError> {
        if predictions.len() != labels.len() {
            return Err(DnnError::InvalidDataset {
                reason: format!("{} predictions but {} labels", predictions.len(), labels.len()),
            });
        }
        if predictions.is_empty() || classes == 0 {
            return Err(DnnError::InvalidDataset { reason: "empty evaluation".into() });
        }
        let mut counts = vec![0u64; classes * classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            if p >= classes || l >= classes {
                return Err(DnnError::InvalidDataset {
                    reason: format!("index out of range: pred {p}, label {l}, classes {classes}"),
                });
            }
            counts[l * classes + p] += 1;
        }
        Ok(ConfusionMatrix { classes, counts })
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Count of examples with true label `actual` predicted as `predicted`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Total examples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f64 / self.total().max(1) as f64
    }

    /// Precision of one class (0 when the class is never predicted).
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.count(class, class) as f64;
        let predicted: u64 = (0..self.classes).map(|a| self.count(a, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp / predicted as f64
        }
    }

    /// Recall of one class (0 when the class never occurs).
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.count(class, class) as f64;
        let actual: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp / actual as f64
        }
    }

    /// F1 score of one class.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        (0..self.classes).map(|c| self.f1(c)).sum::<f64>() / self.classes as f64
    }

    /// The class most often confused *for* `class` (highest off-diagonal
    /// column entry), if any misprediction exists.
    pub fn top_confusion(&self, class: usize) -> Option<(usize, u64)> {
        (0..self.classes)
            .filter(|&p| p != class)
            .map(|p| (p, self.count(class, p)))
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> ConfusionMatrix {
        ConfusionMatrix::from_predictions(&[0, 1, 2, 0, 1, 2], &[0, 1, 2, 0, 1, 2], 3).unwrap()
    }

    #[test]
    fn perfect_predictions_score_one_everywhere() {
        let m = perfect();
        assert_eq!(m.accuracy(), 1.0);
        assert_eq!(m.macro_f1(), 1.0);
        assert_eq!(m.top_confusion(0), None);
    }

    #[test]
    fn counts_land_in_the_right_cells() {
        let m = ConfusionMatrix::from_predictions(&[1, 1, 0], &[0, 1, 0], 2).unwrap();
        assert_eq!(m.count(0, 1), 1); // true 0 predicted 1
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(1, 1), 1);
        assert_eq!(m.total(), 3);
        assert!((m.accuracy() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1_match_hand_computation() {
        // class 0: tp=1, fp=0, fn=1 → precision 1, recall 0.5, f1 2/3.
        let m = ConfusionMatrix::from_predictions(&[1, 1, 0], &[0, 1, 0], 2).unwrap();
        assert_eq!(m.precision(0), 1.0);
        assert_eq!(m.recall(0), 0.5);
        assert!((m.f1(0) - 2.0 / 3.0).abs() < 1e-12);
        // class 1: tp=1, fp=1, fn=0 → precision 0.5, recall 1, f1 2/3.
        assert_eq!(m.precision(1), 0.5);
        assert_eq!(m.recall(1), 1.0);
    }

    #[test]
    fn degenerate_classes_score_zero_not_nan() {
        // Class 2 never occurs and is never predicted.
        let m = ConfusionMatrix::from_predictions(&[0, 1], &[0, 1], 3).unwrap();
        assert_eq!(m.precision(2), 0.0);
        assert_eq!(m.recall(2), 0.0);
        assert_eq!(m.f1(2), 0.0);
        assert!(m.macro_f1().is_finite());
    }

    #[test]
    fn top_confusion_identifies_the_dominant_error() {
        let m =
            ConfusionMatrix::from_predictions(&[1, 1, 2, 1], &[0, 0, 0, 1], 3).unwrap();
        assert_eq!(m.top_confusion(0), Some((1, 2)));
    }

    #[test]
    fn rejects_inconsistent_inputs() {
        assert!(ConfusionMatrix::from_predictions(&[0], &[0, 1], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[], &[], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[5], &[0], 2).is_err());
    }
}
