//! Sliding windows backed by ring buffers — the state every detector
//! hangs its evidence on.
//!
//! Two flavours, both on *simulated* time (never wall clock, so window
//! contents are a pure function of the observation stream):
//!
//! * [`RingWindow`] — the last `capacity` samples, count-based. Backed by
//!   a fixed-size ring: pushing the `capacity + 1`-th sample overwrites
//!   the oldest in place, no allocation after construction.
//! * [`TimeWindow`] — the samples of the last `horizon_secs` simulated
//!   seconds, pruned lazily on push/query. Backed by a `VecDeque` (a
//!   growable ring buffer); timestamps must arrive non-decreasing *per
//!   window*, which holds because each detector keys one window per
//!   monotone clock domain.

use std::collections::VecDeque;

/// The last `capacity` samples, in a fixed-size ring buffer.
#[derive(Debug, Clone)]
pub struct RingWindow {
    buf: Vec<f64>,
    /// Next write position.
    head: usize,
    /// Number of live samples (`<= buf.capacity()`).
    len: usize,
    capacity: usize,
}

impl RingWindow {
    /// An empty window holding at most `capacity` samples (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingWindow { buf: vec![0.0; capacity], head: 0, len: 0, capacity }
    }

    /// Pushes a sample, evicting the oldest once full.
    pub fn push(&mut self, value: f64) {
        self.buf[self.head] = value;
        self.head = (self.head + 1) % self.capacity;
        self.len = (self.len + 1).min(self.capacity);
    }

    /// Live sample count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no samples yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops every sample (detector cool-down after a firing).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// Mean of the live samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.buf[..self.len].iter().sum::<f64>() / self.len as f64
    }

    /// Median of the live samples (0 when empty): upper median, by sorted
    /// rank, so the statistic is deterministic for any float inputs.
    pub fn median(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let mut sorted: Vec<f64> = self.buf[..self.len].to_vec();
        sorted.sort_by(f64::total_cmp);
        sorted[self.len / 2]
    }
}

/// The samples of the last `horizon_secs` simulated seconds.
#[derive(Debug, Clone)]
pub struct TimeWindow {
    horizon_secs: f64,
    /// `(at_secs, value)` pairs, oldest first.
    buf: VecDeque<(f64, f64)>,
}

impl TimeWindow {
    /// An empty window spanning `horizon_secs` of simulated time.
    pub fn new(horizon_secs: f64) -> Self {
        TimeWindow { horizon_secs: horizon_secs.max(0.0), buf: VecDeque::new() }
    }

    /// Pushes a sample at `at_secs` and prunes everything older than the
    /// horizon behind it. Timestamps must arrive non-decreasing.
    pub fn push(&mut self, at_secs: f64, value: f64) {
        self.buf.push_back((at_secs, value));
        self.prune(at_secs);
    }

    /// Drops samples strictly older than `now_secs - horizon` (the window
    /// is the half-open interval `(now - horizon, now]`).
    pub fn prune(&mut self, now_secs: f64) {
        let cutoff = now_secs - self.horizon_secs;
        while let Some(&(at, _)) = self.buf.front() {
            if at <= cutoff {
                self.buf.pop_front();
            } else {
                break;
            }
        }
    }

    /// Live sample count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drops every sample (detector cool-down after a firing).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Sum of the live values.
    pub fn sum(&self) -> f64 {
        self.buf.iter().map(|&(_, v)| v).sum()
    }
}

/// Count of `samples` falling in the half-open window `(now - horizon, now]`
/// — for streams a detector keeps as plain sorted timestamps rather than a
/// [`TimeWindow`] (e.g. the SLO detector's arrival times, which must be
/// queried at *past* instants, not just the newest one).
pub fn count_in_window(samples: &[f64], now_secs: f64, horizon_secs: f64) -> usize {
    let cutoff = now_secs - horizon_secs;
    samples.iter().filter(|&&at| at > cutoff && at <= now_secs).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_window_evicts_oldest_and_tracks_stats() {
        let mut w = RingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        for v in [1.0, 2.0, 3.0] {
            w.push(v);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.mean(), 2.0);
        assert_eq!(w.median(), 2.0);
        w.push(10.0); // evicts 1.0
        assert_eq!(w.len(), 3);
        assert_eq!(w.mean(), 5.0);
        assert_eq!(w.median(), 3.0);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn time_window_prunes_by_horizon() {
        let mut w = TimeWindow::new(10.0);
        w.push(0.0, 1.0);
        w.push(5.0, 1.0);
        w.push(12.0, 1.0);
        // 0.0 is outside (12 - 10, 12]; 5.0 and 12.0 remain.
        assert_eq!(w.len(), 2);
        assert_eq!(w.sum(), 2.0);
        w.push(30.0, 4.0);
        assert_eq!(w.len(), 1);
        assert_eq!(w.sum(), 4.0);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn count_in_window_is_half_open() {
        let samples = [0.0, 5.0, 10.0, 15.0];
        // (5, 15]: excludes 5.0 exactly, includes 15.0 exactly.
        assert_eq!(count_in_window(&samples, 15.0, 10.0), 2);
        assert_eq!(count_in_window(&samples, 100.0, 10.0), 0);
        assert_eq!(count_in_window(&samples, 15.0, f64::INFINITY), 4);
    }
}
