//! Canonical metric names the monitor injects alongside its alert
//! events (see `pipetune_telemetry::names`).

pipetune_telemetry::metric_names! {
    /// Total detector firings folded into the trace.
    pub const ALERTS_TOTAL = "monitor.alerts_total";
    /// Stall/straggler watchdog firings.
    pub const ALERTS_STALL = "monitor.alerts.stall";
    /// Crash-loop detector firings.
    pub const ALERTS_CRASH_LOOP = "monitor.alerts.crash_loop";
    /// SLO burn-rate detector firings.
    pub const ALERTS_SLO_BURN = "monitor.alerts.slo_burn";
    /// Cache-thrash detector firings.
    pub const ALERTS_CACHE_THRASH = "monitor.alerts.cache_thrash";
    /// Admission/queue-growth detector firings.
    pub const ALERTS_QUEUE_GROWTH = "monitor.alerts.queue_growth";
}

/// The per-detector counter for a canonical detector name (the
/// `monitor.alerts.<detector>` family is a closed set, so an unknown
/// detector is a programming error).
pub fn detector_counter(detector: &str) -> &'static str {
    match detector {
        crate::detectors::STALL => ALERTS_STALL,
        crate::detectors::CRASH_LOOP => ALERTS_CRASH_LOOP,
        crate::detectors::SLO_BURN => ALERTS_SLO_BURN,
        crate::detectors::CACHE_THRASH => ALERTS_CACHE_THRASH,
        crate::detectors::QUEUE_GROWTH => ALERTS_QUEUE_GROWTH,
        other => panic!("unregistered detector name {other:?}"),
    }
}
