//! The detector catalog: stall watchdog, crash-loop, SLO burn-rate,
//! cache-thrash and admission/queue-growth (see `docs/monitoring.md` for
//! the window semantics and the burn-rate math).
//!
//! Every detector is a pure stream processor over the deterministic
//! telemetry stream (the [`crate::Detector`] contract), so its firings
//! are byte-identical across executor worker counts and scan
//! granularities. Window parameters are plain public structs — tuning
//! them only changes *which* alerts fire, never their canonical order.

use pipetune_telemetry::{AttrValue, Event, EventKind, MetricsRegistry, Span, SpanKind};

use crate::alert::{Alert, Severity};
use crate::engine::{Detector, TraceIndex};
use crate::window::{count_in_window, RingWindow, TimeWindow};

/// Canonical name of the stall/straggler watchdog.
pub const STALL: &str = "stall";
/// Canonical name of the crash-loop detector.
pub const CRASH_LOOP: &str = "crash_loop";
/// Canonical name of the SLO burn-rate detector.
pub const SLO_BURN: &str = "slo_burn";
/// Canonical name of the cache-thrash detector.
pub const CACHE_THRASH: &str = "cache_thrash";
/// Canonical name of the admission/queue-growth detector.
pub const QUEUE_GROWTH: &str = "queue_growth";

fn attr<'a>(attrs: &'a [(&'static str, AttrValue)], key: &str) -> Option<&'a AttrValue> {
    attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn attr_u64(attrs: &[(&'static str, AttrValue)], key: &str) -> Option<u64> {
    match attr(attrs, key)? {
        AttrValue::U64(v) => Some(*v),
        AttrValue::I64(v) if *v >= 0 => Some(*v as u64),
        _ => None,
    }
}

fn attr_bool(attrs: &[(&'static str, AttrValue)], key: &str) -> Option<bool> {
    match attr(attrs, key)? {
        AttrValue::Bool(b) => Some(*b),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Stall / straggler watchdog
// ---------------------------------------------------------------------------

/// Window parameters of [`StallDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct StallConfig {
    /// Rolling window of committed epoch durations (ring-buffer size).
    pub window: usize,
    /// Fire when an epoch runs longer than `factor ×` the rolling mean.
    pub factor: f64,
    /// Minimum samples in the window before the watchdog arms.
    pub min_samples: usize,
}

impl Default for StallConfig {
    fn default() -> Self {
        StallConfig { window: 32, factor: 3.0, min_samples: 8 }
    }
}

/// Watches committed epoch durations against a rolling window and flags
/// epochs that run far beyond the recent norm — the online face of the
/// paper's per-epoch signals: a straggling node or a pathological
/// configuration shows up here long before the end-of-run report.
///
/// Signal: `epoch` spans (always recorded complete, so reading
/// `end_secs` is live-safe). The window is global across trials in
/// record order — scheduler request order, hence deterministic.
#[derive(Debug)]
pub struct StallDetector {
    config: StallConfig,
    durations: RingWindow,
}

impl StallDetector {
    /// A watchdog with the given window parameters.
    pub fn new(config: StallConfig) -> Self {
        let window = config.window.max(1);
        StallDetector { config, durations: RingWindow::new(window) }
    }
}

impl Detector for StallDetector {
    fn name(&self) -> &'static str {
        STALL
    }

    fn on_span(&mut self, ctx: &TraceIndex, idx: u32, span: &Span, out: &mut Vec<Alert>) {
        if span.kind != SpanKind::Epoch || !span.end_secs.is_finite() {
            return;
        }
        let duration = span.end_secs - span.start_secs;
        if self.durations.len() >= self.config.min_samples.max(1) {
            let mean = self.durations.mean();
            if duration > self.config.factor * mean {
                let severity = if duration > 2.0 * self.config.factor * mean {
                    Severity::Critical
                } else {
                    Severity::Warning
                };
                out.push(Alert {
                    detector: STALL,
                    severity,
                    source: ctx.path(idx),
                    span: Some(idx),
                    at_secs: span.end_secs,
                    message: format!(
                        "epoch ran {duration:.1}s against a rolling mean of {mean:.1}s"
                    ),
                    evidence: vec![
                        ("duration_secs", duration.into()),
                        ("window_mean_secs", mean.into()),
                        ("window_len", self.durations.len().into()),
                        ("factor", self.config.factor.into()),
                    ],
                });
            }
        }
        self.durations.push(duration);
    }
}

// ---------------------------------------------------------------------------
// Crash loop
// ---------------------------------------------------------------------------

/// Window parameters of [`CrashLoopDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct CrashLoopConfig {
    /// Sliding horizon, simulated seconds on the source's clock.
    pub window_secs: f64,
    /// Fire at the `burst`-th fault/retry on one source within the
    /// window.
    pub burst: usize,
}

impl Default for CrashLoopConfig {
    fn default() -> Self {
        CrashLoopConfig { window_secs: 20_000.0, burst: 3 }
    }
}

/// Flags sources caught in a crash/retry spiral: `fault` and `retry`
/// events bucketed per `(job, trial)` source — the nearest `job` or
/// `trial` ancestor of the event's span — with a firing when one source
/// accumulates a burst within the sliding window. After a firing the
/// source's window resets (cool-down), so a steady drizzle refires only
/// after building a fresh burst.
#[derive(Debug)]
pub struct CrashLoopDetector {
    config: CrashLoopConfig,
    /// Per-source event-time windows, keyed by source span index.
    windows: std::collections::BTreeMap<u32, TimeWindow>,
}

impl CrashLoopDetector {
    /// A detector with the given burst parameters.
    pub fn new(config: CrashLoopConfig) -> Self {
        CrashLoopDetector { config, windows: std::collections::BTreeMap::new() }
    }
}

impl Detector for CrashLoopDetector {
    fn name(&self) -> &'static str {
        CRASH_LOOP
    }

    fn on_event(&mut self, ctx: &TraceIndex, _idx: usize, event: &Event, out: &mut Vec<Alert>) {
        if !matches!(event.kind, EventKind::Fault | EventKind::Retry) {
            return;
        }
        let Some(span) = event.span else { return };
        // Bucket by job when the event sits under one (service-level
        // crash/resubmit cycles), else by trial (epoch-level retry
        // storms), else by the owning span itself. Each bucket lives on
        // one clock domain, so its window timestamps are monotone.
        let source = ctx
            .ancestor_of_kind(span, SpanKind::Job)
            .or_else(|| ctx.ancestor_of_kind(span, SpanKind::Trial))
            .unwrap_or(span);
        let window = self
            .windows
            .entry(source)
            .or_insert_with(|| TimeWindow::new(self.config.window_secs));
        window.push(event.at_secs, 1.0);
        if window.len() >= self.config.burst.max(1) {
            let count = window.len();
            window.clear();
            out.push(Alert {
                detector: CRASH_LOOP,
                severity: Severity::Critical,
                source: ctx.path(source),
                span: Some(source),
                at_secs: event.at_secs,
                message: format!(
                    "{count} fault/retry events within {:.0}s",
                    self.config.window_secs
                ),
                evidence: vec![
                    ("events_in_window", count.into()),
                    ("window_secs", self.config.window_secs.into()),
                    ("burst", self.config.burst.into()),
                ],
            });
        }
    }
}

// ---------------------------------------------------------------------------
// SLO burn rate
// ---------------------------------------------------------------------------

/// Window parameters of [`SloBurnDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloBurnConfig {
    /// The slow window, simulated seconds on the service clock.
    pub slow_window_secs: f64,
    /// The fast window (a fraction of the slow one, SRE-style).
    pub fast_window_secs: f64,
    /// Error budget: the shed fraction the SLO tolerates (e.g. `0.1` =
    /// one job in ten may miss its deadline).
    pub budget: f64,
    /// Fire when **both** windows burn at or above this multiple of the
    /// budget.
    pub burn_threshold: f64,
}

impl Default for SloBurnConfig {
    fn default() -> Self {
        SloBurnConfig {
            slow_window_secs: 40_000.0,
            fast_window_secs: 8_000.0,
            budget: 0.1,
            burn_threshold: 1.0,
        }
    }
}

/// Multi-window SLO burn-rate alerts for `ServiceConfig::with_deadline`
/// jobs, SRE-style: the *burn rate* is the deadline-miss fraction over a
/// window divided by the error budget, and a firing needs both a fast
/// window (is it burning **now**?) and a slow window (has it burned
/// **enough to matter**?) at or above the threshold — short blips and
/// long-ago incidents both stay quiet.
///
/// Signals: `job` spans (arrival = span record; `start_secs` is the
/// arrival time on the service clock) and `shed` events (a shed *is* a
/// deadline violation, and carries the `deadline_secs` it enforced).
/// The burn denominator is the set of jobs whose **deadline fell in the
/// window** — arrivals shifted forward by the deadline — because that is
/// when each job's SLO verdict lands; sheds land at exactly their
/// deadline, so numerator and denominator live on the same axis.
/// Evaluation happens at each shed, counting only arrivals at or before
/// it — observations the live engine is guaranteed to have seen, which
/// is what keeps live scans and offline replay byte-identical.
#[derive(Debug)]
pub struct SloBurnDetector {
    config: SloBurnConfig,
    /// Arrival times of every job, record order (non-decreasing).
    arrivals: Vec<f64>,
    /// Shed times, record order (non-decreasing).
    sheds: Vec<f64>,
}

impl SloBurnDetector {
    /// A detector with the given window pair.
    pub fn new(config: SloBurnConfig) -> Self {
        SloBurnDetector { config, arrivals: Vec::new(), sheds: Vec::new() }
    }

    /// Burn rate over the window `(now - horizon, now]`: sheds in the
    /// window over jobs *due* in it (arrival + deadline in the window,
    /// i.e. arrivals in the window shifted back by `deadline`), divided
    /// by the budget; 0 when no job was due.
    fn burn(&self, now: f64, horizon: f64, deadline: f64) -> (f64, usize, usize) {
        let due = count_in_window(&self.arrivals, now - deadline, horizon);
        let shed = count_in_window(&self.sheds, now, horizon);
        if due == 0 {
            return (0.0, 0, shed);
        }
        let rate = shed as f64 / due as f64;
        (rate / self.config.budget.max(f64::MIN_POSITIVE), due, shed)
    }
}

impl Detector for SloBurnDetector {
    fn name(&self) -> &'static str {
        SLO_BURN
    }

    fn on_span(&mut self, _ctx: &TraceIndex, _idx: u32, span: &Span, _out: &mut Vec<Alert>) {
        if span.kind == SpanKind::Job {
            self.arrivals.push(span.start_secs);
        }
    }

    fn on_event(&mut self, ctx: &TraceIndex, _idx: usize, event: &Event, out: &mut Vec<Alert>) {
        if event.kind != EventKind::Shed {
            return;
        }
        self.sheds.push(event.at_secs);
        let deadline = attr(&event.attrs, "deadline_secs")
            .and_then(AttrValue::as_field)
            .unwrap_or(0.0);
        let (fast_burn, fast_jobs, fast_sheds) =
            self.burn(event.at_secs, self.config.fast_window_secs, deadline);
        let (slow_burn, slow_jobs, slow_sheds) =
            self.burn(event.at_secs, self.config.slow_window_secs, deadline);
        if fast_burn >= self.config.burn_threshold && slow_burn >= self.config.burn_threshold {
            let source = event.span.map(|s| ctx.path(s)).unwrap_or_default();
            out.push(Alert {
                detector: SLO_BURN,
                severity: Severity::Critical,
                source,
                span: event.span,
                at_secs: event.at_secs,
                message: format!(
                    "deadline budget burning at {fast_burn:.1}x (fast) / {slow_burn:.1}x (slow)"
                ),
                evidence: vec![
                    ("fast_burn", fast_burn.into()),
                    ("slow_burn", slow_burn.into()),
                    ("fast_window_secs", self.config.fast_window_secs.into()),
                    ("slow_window_secs", self.config.slow_window_secs.into()),
                    ("fast_jobs", fast_jobs.into()),
                    ("fast_sheds", fast_sheds.into()),
                    ("slow_jobs", slow_jobs.into()),
                    ("slow_sheds", slow_sheds.into()),
                    ("budget", self.config.budget.into()),
                ],
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Cache thrash
// ---------------------------------------------------------------------------

/// Window parameters of [`CacheThrashDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct CacheThrashConfig {
    /// Rolling window of `cache_lookup` outcomes (ring-buffer size).
    pub window: usize,
    /// Fire when the windowed hit rate drops below this floor.
    pub min_hit_rate: f64,
    /// Minimum lookups in the window before the detector arms.
    pub min_samples: usize,
    /// End-of-run churn alert when `cache.evict / cache.insert` exceeds
    /// this ratio.
    pub max_evict_per_insert: f64,
}

impl Default for CacheThrashConfig {
    fn default() -> Self {
        CacheThrashConfig { window: 16, min_hit_rate: 0.2, min_samples: 8, max_evict_per_insert: 0.5 }
    }
}

/// Flags epoch-reuse cache collapse: a rolling window over
/// `cache_lookup` events fires when the hit rate falls below the floor
/// (the cache is being consulted and missing — capacity too small or
/// keys churning), and the finish hook compares the final `cache.evict`
/// and `cache.insert` counters for eviction churn the event stream alone
/// cannot see. After a hit-rate firing the window resets (cool-down).
#[derive(Debug)]
pub struct CacheThrashDetector {
    config: CacheThrashConfig,
    /// 1.0 per hit, 0.0 per miss.
    lookups: RingWindow,
}

impl CacheThrashDetector {
    /// A detector with the given window parameters.
    pub fn new(config: CacheThrashConfig) -> Self {
        let window = config.window.max(1);
        CacheThrashDetector { config, lookups: RingWindow::new(window) }
    }
}

impl Detector for CacheThrashDetector {
    fn name(&self) -> &'static str {
        CACHE_THRASH
    }

    fn on_event(&mut self, ctx: &TraceIndex, _idx: usize, event: &Event, out: &mut Vec<Alert>) {
        if event.kind != EventKind::CacheLookup {
            return;
        }
        let hit = attr_bool(&event.attrs, "hit").unwrap_or(false);
        self.lookups.push(if hit { 1.0 } else { 0.0 });
        if self.lookups.len() >= self.config.min_samples.max(1) {
            let hit_rate = self.lookups.mean();
            if hit_rate < self.config.min_hit_rate {
                let window_len = self.lookups.len();
                self.lookups.clear();
                let source = event.span.map(|s| ctx.path(s)).unwrap_or_default();
                out.push(Alert {
                    detector: CACHE_THRASH,
                    severity: Severity::Warning,
                    source,
                    span: event.span,
                    at_secs: event.at_secs,
                    message: format!(
                        "cache hit rate collapsed to {hit_rate:.2} over the last {window_len} lookups"
                    ),
                    evidence: vec![
                        ("hit_rate", hit_rate.into()),
                        ("window_len", window_len.into()),
                        ("min_hit_rate", self.config.min_hit_rate.into()),
                    ],
                });
            }
        }
    }

    fn finish(&mut self, _ctx: &TraceIndex, metrics: &MetricsRegistry, out: &mut Vec<Alert>) {
        let evictions = metrics.counter("cache.evict");
        let inserts = metrics.counter("cache.insert");
        if inserts > 0 {
            let ratio = evictions as f64 / inserts as f64;
            if ratio > self.config.max_evict_per_insert {
                out.push(Alert {
                    detector: CACHE_THRASH,
                    severity: Severity::Warning,
                    source: String::new(),
                    span: None,
                    at_secs: 0.0,
                    message: format!(
                        "eviction churn: {evictions} evictions against {inserts} inserts"
                    ),
                    evidence: vec![
                        ("evictions", evictions.into()),
                        ("inserts", inserts.into()),
                        ("evict_per_insert", ratio.into()),
                        ("max_evict_per_insert", self.config.max_evict_per_insert.into()),
                    ],
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Admission / queue growth
// ---------------------------------------------------------------------------

/// Window parameters of [`QueueGrowthDetector`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueueGrowthConfig {
    /// Fire when a job arrives to a backlog at or beyond this depth
    /// (queued + running jobs ahead of it).
    pub depth_threshold: u64,
    /// Sliding horizon for admission rejections, service-clock seconds.
    pub window_secs: f64,
    /// Fire at the `rejected_burst`-th admission rejection within the
    /// window.
    pub rejected_burst: usize,
}

impl Default for QueueGrowthConfig {
    fn default() -> Self {
        QueueGrowthConfig { depth_threshold: 4, window_secs: 20_000.0, rejected_burst: 2 }
    }
}

/// Flags a service falling behind its arrival stream: a job arriving to
/// a deep backlog (the `queue_depth` attribute the service stamps on
/// every job span at arrival) or a burst of admission rejections within
/// the sliding window. Both signals live entirely on job spans, so the
/// detector sees them the instant the service records the arrival.
#[derive(Debug)]
pub struct QueueGrowthDetector {
    config: QueueGrowthConfig,
    rejections: TimeWindow,
}

impl QueueGrowthDetector {
    /// A detector with the given thresholds.
    pub fn new(config: QueueGrowthConfig) -> Self {
        let window = TimeWindow::new(config.window_secs);
        QueueGrowthDetector { config, rejections: window }
    }
}

impl Detector for QueueGrowthDetector {
    fn name(&self) -> &'static str {
        QUEUE_GROWTH
    }

    fn on_span(&mut self, ctx: &TraceIndex, idx: u32, span: &Span, out: &mut Vec<Alert>) {
        if span.kind != SpanKind::Job {
            return;
        }
        if attr_bool(&span.attrs, "admitted") == Some(false) {
            self.rejections.push(span.start_secs, 1.0);
            if self.rejections.len() >= self.config.rejected_burst.max(1) {
                let count = self.rejections.len();
                self.rejections.clear();
                out.push(Alert {
                    detector: QUEUE_GROWTH,
                    severity: Severity::Critical,
                    source: ctx.path(idx),
                    span: Some(idx),
                    at_secs: span.start_secs,
                    message: format!(
                        "{count} admission rejections within {:.0}s",
                        self.config.window_secs
                    ),
                    evidence: vec![
                        ("rejections_in_window", count.into()),
                        ("window_secs", self.config.window_secs.into()),
                        ("rejected_burst", self.config.rejected_burst.into()),
                    ],
                });
            }
            return;
        }
        if let Some(depth) = attr_u64(&span.attrs, "queue_depth") {
            if depth >= self.config.depth_threshold.max(1) {
                out.push(Alert {
                    detector: QUEUE_GROWTH,
                    severity: Severity::Warning,
                    source: ctx.path(idx),
                    span: Some(idx),
                    at_secs: span.start_secs,
                    message: format!("job arrived to a backlog of {depth}"),
                    evidence: vec![
                        ("queue_depth", depth.into()),
                        ("depth_threshold", self.config.depth_threshold.into()),
                    ],
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{MonitorConfig, MonitorEngine};
    use pipetune_telemetry::TelemetrySnapshot;

    fn span(kind: SpanKind, label: &str, parent: Option<u32>, start: f64, end: f64) -> Span {
        Span { kind, label: label.into(), parent, start_secs: start, end_secs: end, attrs: vec![] }
    }

    fn epoch(parent: u32, start: f64, end: f64) -> Span {
        Span {
            kind: SpanKind::Epoch,
            label: format!("epoch ({start}..{end})"),
            parent: Some(parent),
            start_secs: start,
            end_secs: end,
            attrs: vec![],
        }
    }

    fn run_detectors(
        config: &MonitorConfig,
        spans: Vec<Span>,
        events: Vec<Event>,
    ) -> crate::IncidentTimeline {
        let mut engine = MonitorEngine::new(config);
        let snap = TelemetrySnapshot { spans, events, metrics: MetricsRegistry::new() };
        engine.observe_snapshot(&snap);
        engine.finish(&snap.metrics)
    }

    #[test]
    fn stall_watchdog_flags_outlier_epochs() {
        let config = MonitorConfig {
            stall: Some(StallConfig { window: 8, factor: 3.0, min_samples: 4 }),
            ..MonitorConfig::none()
        };
        let mut spans = vec![span(SpanKind::Trial, "trial 0", None, 0.0, 200.0)];
        let mut t = 0.0;
        for _ in 0..6 {
            spans.push(epoch(0, t, t + 10.0));
            t += 10.0;
        }
        spans.push(epoch(0, t, t + 100.0)); // 10× the rolling mean
        let timeline = run_detectors(&config, spans.clone(), vec![]);
        assert_eq!(timeline.len(), 1);
        let alert = &timeline.alerts[0];
        assert_eq!(alert.detector, STALL);
        assert_eq!(alert.severity, Severity::Critical);
        assert_eq!(alert.span, Some(7));
        assert!(alert.source.starts_with("trial 0 > "), "{}", alert.source);
        // Below the arming threshold nothing fires.
        let quiet = run_detectors(&config, spans[..4].to_vec(), vec![]);
        assert!(quiet.is_empty());
    }

    #[test]
    fn crash_loop_fires_on_bursts_and_cools_down() {
        let config = MonitorConfig {
            crash_loop: Some(CrashLoopConfig { window_secs: 100.0, burst: 3 }),
            ..MonitorConfig::none()
        };
        let spans = vec![
            span(SpanKind::Service, "svc", None, 0.0, 1000.0),
            span(SpanKind::Job, "job 0", Some(0), 0.0, 900.0),
        ];
        let fault = |at: f64| Event { kind: EventKind::Fault, span: Some(1), at_secs: at, attrs: vec![] };
        let retry = |at: f64| Event { kind: EventKind::Retry, span: Some(1), at_secs: at, attrs: vec![] };
        // Burst of three inside the window → one alert; the cool-down
        // resets the window so the fourth event alone stays quiet.
        let timeline = run_detectors(
            &config,
            spans.clone(),
            vec![fault(10.0), retry(20.0), fault(30.0), retry(90.0)],
        );
        assert_eq!(timeline.len(), 1);
        assert_eq!(timeline.alerts[0].detector, CRASH_LOOP);
        assert_eq!(timeline.alerts[0].at_secs, 30.0);
        assert_eq!(timeline.alerts[0].span, Some(1), "bucketed by the job ancestor");
        // Spread beyond the window → never fires.
        let quiet = run_detectors(
            &config,
            spans,
            vec![fault(10.0), retry(200.0), fault(400.0), retry(600.0)],
        );
        assert!(quiet.is_empty());
    }

    #[test]
    fn slo_burn_needs_both_windows() {
        let config = MonitorConfig {
            slo_burn: Some(SloBurnConfig {
                slow_window_secs: 1000.0,
                fast_window_secs: 100.0,
                budget: 0.1,
                burn_threshold: 1.0,
            }),
            ..MonitorConfig::none()
        };
        let mut spans = vec![span(SpanKind::Service, "svc", None, 0.0, 2000.0)];
        for i in 0..10 {
            spans.push(span(SpanKind::Job, &format!("job {i}"), Some(0), i as f64 * 50.0, 1500.0));
        }
        let shed = |at: f64, job: u32| Event { kind: EventKind::Shed, span: Some(job), at_secs: at, attrs: vec![] };
        // A shed right after arrivals: fast window (one arrival, one
        // shed) and slow window (10 arrivals, 1 shed = budget exactly)
        // both burn ≥ 1×.
        let timeline = run_detectors(&config, spans.clone(), vec![shed(480.0, 9)]);
        assert_eq!(timeline.len(), 1);
        let alert = &timeline.alerts[0];
        assert_eq!(alert.detector, SLO_BURN);
        assert_eq!(alert.severity, Severity::Critical);
        // A shed long after the last arrival: the fast window holds no
        // arrivals, so the fast burn is 0 and nothing fires.
        let quiet = run_detectors(&config, spans.clone(), vec![shed(1400.0, 9)]);
        assert!(quiet.is_empty());
        // With a `deadline_secs` attr, the denominator shifts to jobs
        // *due* in the window: a shed at arrival + 1000 would miss every
        // arrival in the raw fast window, but two jobs (arrivals 400 and
        // 450) fall due inside it — so the detector still fires.
        let late = Event {
            kind: EventKind::Shed,
            span: Some(10),
            at_secs: 1480.0,
            attrs: vec![("deadline_secs", 1000.0.into())],
        };
        let shifted = run_detectors(&config, spans, vec![late]);
        assert_eq!(shifted.len(), 1);
        assert_eq!(shifted.alerts[0].detector, SLO_BURN);
    }

    #[test]
    fn cache_thrash_flags_hit_rate_collapse_and_eviction_churn() {
        let config = MonitorConfig {
            cache_thrash: Some(CacheThrashConfig {
                window: 8,
                min_hit_rate: 0.3,
                min_samples: 4,
                max_evict_per_insert: 0.5,
            }),
            ..MonitorConfig::none()
        };
        let spans = vec![span(SpanKind::Trial, "trial 0", None, 0.0, 100.0)];
        let lookup = |at: f64, hit: bool| Event {
            kind: EventKind::CacheLookup,
            span: Some(0),
            at_secs: at,
            attrs: vec![("hit", hit.into())],
        };
        let misses: Vec<Event> = (0..4).map(|i| lookup(f64::from(i) * 10.0, false)).collect();
        let timeline = run_detectors(&config, spans.clone(), misses);
        assert_eq!(timeline.len(), 1);
        assert_eq!(timeline.alerts[0].detector, CACHE_THRASH);
        // All hits → quiet.
        let hits: Vec<Event> = (0..8).map(|i| lookup(f64::from(i) * 10.0, true)).collect();
        assert!(run_detectors(&config, spans.clone(), hits).is_empty());
        // Eviction churn from the final counters, via the finish hook.
        let mut engine = MonitorEngine::new(&config);
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("cache.insert", 10);
        metrics.counter_add("cache.evict", 8);
        let snap = TelemetrySnapshot { spans, events: vec![], metrics };
        engine.observe_snapshot(&snap);
        let timeline = engine.finish(&snap.metrics);
        assert_eq!(timeline.len(), 1);
        assert!(timeline.alerts[0].message.contains("eviction churn"));
    }

    #[test]
    fn queue_growth_flags_deep_backlogs_and_rejection_bursts() {
        let config = MonitorConfig {
            queue_growth: Some(QueueGrowthConfig {
                depth_threshold: 3,
                window_secs: 100.0,
                rejected_burst: 2,
            }),
            ..MonitorConfig::none()
        };
        let job = |label: &str, start: f64, attrs: Vec<(&'static str, AttrValue)>| Span {
            kind: SpanKind::Job,
            label: label.into(),
            parent: Some(0),
            start_secs: start,
            end_secs: f64::NAN,
            attrs,
        };
        let spans = vec![
            span(SpanKind::Service, "svc", None, 0.0, f64::NAN),
            job("job 0", 10.0, vec![("admitted", true.into()), ("queue_depth", 1u64.into())]),
            job("job 1", 20.0, vec![("admitted", true.into()), ("queue_depth", 5u64.into())]),
            job("job 2", 30.0, vec![("admitted", false.into())]),
            job("job 3", 40.0, vec![("admitted", false.into())]),
        ];
        let timeline = run_detectors(&config, spans, vec![]);
        assert_eq!(timeline.len(), 2);
        // Canonical order: the depth alert (t=20) precedes the rejection
        // burst (t=40).
        assert_eq!(timeline.alerts[0].at_secs, 20.0);
        assert_eq!(timeline.alerts[0].severity, Severity::Warning);
        assert_eq!(timeline.alerts[1].at_secs, 40.0);
        assert_eq!(timeline.alerts[1].severity, Severity::Critical);
    }
}
