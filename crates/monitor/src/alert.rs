//! Typed [`Alert`] records and the deterministic [`IncidentTimeline`]
//! they collect into.

use std::collections::BTreeMap;

use pipetune_telemetry::{Attrs, Event, EventKind, TelemetrySnapshot};
use serde_json::Value;

/// How bad a detector firing is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Worth a line in the report, nothing is on fire.
    Info,
    /// Degradation that will cost time or budget if it persists.
    Warning,
    /// An SLO is burning or work is being lost right now.
    Critical,
}

impl Severity {
    /// Stable lower-snake name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Critical => "critical",
        }
    }

    /// Inverse of [`Severity::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "info" => Some(Severity::Info),
            "warning" => Some(Severity::Warning),
            "critical" => Some(Severity::Critical),
            _ => None,
        }
    }
}

/// One detector firing: what fired, where in the span tree, when on the
/// simulated clock, and the windowed evidence that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Canonical detector name (`stall`, `crash_loop`, `slo_burn`,
    /// `cache_thrash`, `queue_growth`).
    pub detector: &'static str,
    /// Firing severity.
    pub severity: Severity,
    /// Human-readable path of the source span, root-first
    /// (`"svc fifo > job 3: vgg/cifar"`); empty for trace-global alerts.
    pub source: String,
    /// Index of the source span in the trace, if the alert anchors to one.
    pub span: Option<u32>,
    /// Simulated timestamp, on the source span's clock domain.
    pub at_secs: f64,
    /// One-line description of the firing.
    pub message: String,
    /// Windowed evidence (window sizes, rates, counts) — exported with
    /// the alert and injected into the trace as event attributes.
    pub evidence: Attrs,
}

impl Alert {
    /// The deterministic ordering key: simulated time first, then
    /// detector name, then source span, then message — a total order over
    /// any alert set the detectors can produce, so the timeline never
    /// depends on detector iteration order or window sizes.
    fn sort_key(&self) -> (u64, &'static str, u32, &str) {
        // total_cmp order via the sign-folded bit pattern, so NaN/inf
        // timestamps (never produced, but cheap to be total about) still
        // sort deterministically.
        let bits = self.at_secs.to_bits();
        let folded = if bits >> 63 == 1 { !bits } else { bits | (1 << 63) };
        (folded, self.detector, self.span.map_or(u32::MAX, |s| s), &self.message)
    }

    fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert("at_secs".into(), Value::F64(self.at_secs));
        obj.insert("detector".into(), Value::String(self.detector.into()));
        let mut evidence = serde_json::Map::new();
        for (key, value) in &self.evidence {
            evidence.insert((*key).to_string(), value.to_json());
        }
        obj.insert("evidence".into(), Value::Object(evidence));
        obj.insert("message".into(), Value::String(self.message.clone()));
        obj.insert("severity".into(), Value::String(self.severity.name().into()));
        obj.insert("source".into(), Value::String(self.source.clone()));
        obj.insert("span".into(), self.span.map_or(Value::Null, |s| Value::U64(u64::from(s))));
        Value::Object(obj)
    }
}

/// The sorted, deterministic record of every detector firing in a run.
///
/// Alerts are ordered by `(at_secs, detector, span, message)` — a total
/// order independent of detector registration order and window
/// configuration, which is what the "alerts never reorder" property test
/// pins. The JSON export uses sorted keys throughout, so byte-identical
/// runs produce byte-identical timelines.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IncidentTimeline {
    /// All alerts, in the canonical order.
    pub alerts: Vec<Alert>,
}

impl IncidentTimeline {
    /// Builds a timeline from raw firings, establishing the canonical
    /// order.
    pub fn from_alerts(mut alerts: Vec<Alert>) -> Self {
        alerts.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        IncidentTimeline { alerts }
    }

    /// Whether no detector fired.
    pub fn is_empty(&self) -> bool {
        self.alerts.is_empty()
    }

    /// Number of alerts.
    pub fn len(&self) -> usize {
        self.alerts.len()
    }

    /// Alert counts per detector, sorted by detector name.
    pub fn counts_by_detector(&self) -> BTreeMap<&'static str, u64> {
        let mut counts = BTreeMap::new();
        for alert in &self.alerts {
            *counts.entry(alert.detector).or_insert(0) += 1;
        }
        counts
    }

    /// Alerts fired by one detector.
    pub fn count_for(&self, detector: &str) -> u64 {
        self.alerts.iter().filter(|a| a.detector == detector).count() as u64
    }

    /// The timeline as one JSON value with sorted object keys.
    pub fn to_json(&self) -> Value {
        let mut obj = serde_json::Map::new();
        obj.insert(
            "alerts".into(),
            Value::Array(self.alerts.iter().map(Alert::to_json).collect()),
        );
        let mut counts = serde_json::Map::new();
        for (detector, n) in self.counts_by_detector() {
            counts.insert(detector.to_string(), Value::U64(n));
        }
        obj.insert("counts".into(), Value::Object(counts));
        obj.insert("version".into(), Value::U64(1));
        Value::Object(obj)
    }

    /// The timeline as a pretty-printed JSON string (the incident
    /// artefact format, uploaded by CI on chaos-gate failure).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json())
            .expect("incident timeline serialises infallibly")
    }

    /// Folds the timeline back into a trace: one `alert` point event per
    /// alert (attributes `detector`, `severity`, `message` plus the
    /// evidence) and the `monitor.*` counters. An empty timeline is a
    /// strict no-op — the bit-identity contract for runs with no
    /// detectors configured.
    pub fn inject_into(&self, snapshot: &mut TelemetrySnapshot) {
        if self.alerts.is_empty() {
            return;
        }
        for alert in &self.alerts {
            let mut attrs: Attrs = vec![
                ("detector", alert.detector.into()),
                ("severity", alert.severity.name().into()),
                ("message", alert.message.as_str().into()),
            ];
            attrs.extend(alert.evidence.iter().cloned());
            snapshot.events.push(Event {
                kind: EventKind::Alert,
                span: alert.span,
                at_secs: alert.at_secs,
                attrs,
            });
        }
        snapshot.metrics.counter_add(crate::observe::ALERTS_TOTAL, self.alerts.len() as u64);
        for (detector, n) in self.counts_by_detector() {
            snapshot.metrics.counter_add(crate::observe::detector_counter(detector), n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_telemetry::AttrValue;

    fn alert(detector: &'static str, at: f64, span: Option<u32>) -> Alert {
        Alert {
            detector,
            severity: Severity::Warning,
            source: "run > trial".into(),
            span,
            at_secs: at,
            message: format!("{detector} fired"),
            evidence: vec![("window", AttrValue::U64(8))],
        }
    }

    #[test]
    fn timeline_orders_by_time_then_detector_then_span() {
        let t = IncidentTimeline::from_alerts(vec![
            alert("stall", 5.0, Some(2)),
            alert("crash_loop", 5.0, Some(1)),
            alert("stall", 1.0, None),
            alert("stall", 5.0, Some(1)),
        ]);
        let keys: Vec<(f64, &str, Option<u32>)> =
            t.alerts.iter().map(|a| (a.at_secs, a.detector, a.span)).collect();
        assert_eq!(
            keys,
            vec![
                (1.0, "stall", None),
                (5.0, "crash_loop", Some(1)),
                (5.0, "stall", Some(1)),
                (5.0, "stall", Some(2)),
            ]
        );
        assert_eq!(t.count_for("stall"), 3);
        assert_eq!(t.counts_by_detector().get("crash_loop"), Some(&1));
    }

    #[test]
    fn json_export_is_sorted_and_stable() {
        let t = IncidentTimeline::from_alerts(vec![alert("stall", 2.0, Some(0))]);
        let text = t.to_json_string();
        assert_eq!(text, t.to_json_string());
        assert!(text.contains("\"version\": 1"));
        assert!(text.contains("\"detector\": \"stall\""));
        assert!(text.contains("\"window\": 8"));
        // Keys arrive sorted within each alert object.
        let at = text.find("\"at_secs\"").unwrap();
        let sev = text.find("\"severity\"").unwrap();
        assert!(at < sev);
    }

    #[test]
    fn injecting_an_empty_timeline_is_identity() {
        let mut snap = TelemetrySnapshot::default();
        snap.metrics.counter_add("epochs.total", 3);
        let before = snap.to_json_string();
        IncidentTimeline::default().inject_into(&mut snap);
        assert_eq!(snap.to_json_string(), before);
    }

    #[test]
    fn injection_adds_alert_events_and_counters() {
        let mut snap = TelemetrySnapshot::default();
        let t = IncidentTimeline::from_alerts(vec![
            alert("stall", 2.0, None),
            alert("slo_burn", 3.0, None),
        ]);
        t.inject_into(&mut snap);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind, EventKind::Alert);
        assert_eq!(snap.metrics.counter(crate::observe::ALERTS_TOTAL), 2);
        assert_eq!(snap.metrics.counter(crate::observe::ALERTS_STALL), 1);
        assert_eq!(snap.metrics.counter(crate::observe::ALERTS_SLO_BURN), 1);
    }

    #[test]
    fn severity_names_round_trip() {
        for s in [Severity::Info, Severity::Warning, Severity::Critical] {
            assert_eq!(Severity::from_name(s.name()), Some(s));
        }
        assert_eq!(Severity::from_name("panic"), None);
    }
}
