//! Online monitoring for PipeTune runs: streaming detectors over the
//! deterministic telemetry stream, collected into a sorted incident
//! timeline.
//!
//! The paper's tuning loop already emits a complete, byte-identical
//! trace of every run (see `pipetune-telemetry`): spans on simulated
//! clocks, point events, metrics — merged in scheduler request order so
//! the stream is the same for 1 worker or 64. This crate closes the
//! loop *online*: a [`MonitorEngine`] consumes that stream as it is
//! recorded and runs a pluggable [`Detector`] framework over sliding
//! windows ([`RingWindow`], [`TimeWindow`]) backed by ring buffers:
//!
//! * [`detectors::StallDetector`] — stall/straggler watchdog (epoch
//!   duration vs. a rolling window).
//! * [`detectors::CrashLoopDetector`] — retry bursts per `(job, trial)`
//!   source within a sliding window.
//! * [`detectors::SloBurnDetector`] — multi-window (fast/slow,
//!   SRE-style) deadline burn-rate alerts for `with_deadline` services.
//! * [`detectors::CacheThrashDetector`] — epoch-cache hit-rate collapse
//!   and eviction churn.
//! * [`detectors::QueueGrowthDetector`] — admission rejections and
//!   backlog depth in the multi-job service.
//!
//! Firings become typed [`Alert`] records collected into a
//! deterministic, sorted [`IncidentTimeline`] — exportable as
//! sorted-key JSON, injectable back into the trace as `alert` point
//! events plus `monitor.*` counters, and replayable offline
//! (`pipetune-trace watch`) with byte-identical results.
//!
//! # Determinism contract
//!
//! The engine is cursor-based: every span and event is delivered to the
//! detectors exactly once, in record order, regardless of how the
//! stream is chopped into scans. Detectors are pure stream processors
//! honouring the [`Detector`] clauses (never read a non-epoch span's
//! `end_secs`; never let an alert depend on observations later than its
//! trigger), and the final timeline is sorted by a total order over
//! alerts. Consequences, all pinned by tests:
//!
//! * one timeline for workers 1, 4 and 64;
//! * live per-round scans ≡ one-shot offline replay of the exported
//!   trace;
//! * an engine with **no detectors** leaves every artefact bit-identical
//!   to a build without the monitor.
//!
//! # Example
//!
//! ```
//! use pipetune_monitor::{MonitorConfig, MonitorEngine};
//! use pipetune_telemetry::{SpanId, SpanKind, TelemetryHandle};
//!
//! let telemetry = TelemetryHandle::enabled();
//! let trial = telemetry.open_span(SpanId::NONE, SpanKind::Trial, "trial 0", 0.0, vec![]);
//! for e in 0..10u32 {
//!     let (start, end) = (f64::from(e) * 10.0, f64::from(e) * 10.0 + 10.0);
//!     let span = telemetry.open_span(trial, SpanKind::Epoch, format!("epoch {e}"), start, vec![]);
//!     telemetry.close_span(span, end);
//! }
//! // One pathological epoch: 20× the rolling mean.
//! let span = telemetry.open_span(trial, SpanKind::Epoch, "epoch 10", 100.0, vec![]);
//! telemetry.close_span(span, 300.0);
//! telemetry.close_span(trial, 300.0);
//!
//! let mut engine = MonitorEngine::new(&MonitorConfig::standard());
//! let snap = telemetry.snapshot().unwrap();
//! engine.observe_snapshot(&snap);
//! let timeline = engine.finish(&snap.metrics);
//! assert_eq!(timeline.count_for("stall"), 1);
//! ```

#![warn(missing_docs)]

pub mod alert;
pub mod detectors;
pub mod engine;
pub mod observe;
pub mod window;

pub use alert::{Alert, IncidentTimeline, Severity};
pub use detectors::{
    CacheThrashConfig, CrashLoopConfig, QueueGrowthConfig, SloBurnConfig, StallConfig,
};
pub use engine::{Detector, MonitorConfig, MonitorEngine, TraceIndex};
pub use window::{count_in_window, RingWindow, TimeWindow};

use std::sync::{Arc, Mutex, MutexGuard};

use pipetune_telemetry::TelemetryHandle;

/// Shared handle to a run's monitor engine, mirroring
/// [`TelemetryHandle`]'s cost model: disabled (the default) it is a
/// `None` and every call is a branch and a return; enabled, all clones
/// share one mutex-guarded [`MonitorEngine`].
///
/// The runner scans it after every scheduler round and the service after
/// every dispatch step — both no-ops unless the handle is enabled *and*
/// has detectors configured.
///
/// ```
/// use pipetune_monitor::{MonitorConfig, MonitorHandle};
/// use pipetune_telemetry::TelemetryHandle;
///
/// let telemetry = TelemetryHandle::enabled();
/// let monitor = MonitorHandle::with_config(&MonitorConfig::standard());
/// monitor.scan(&telemetry);
/// let timeline = monitor.finish(&telemetry).unwrap();
/// assert!(timeline.is_empty()); // nothing was recorded
///
/// // Disabled handles observe nothing and return no timeline.
/// assert!(MonitorHandle::disabled().finish(&telemetry).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct MonitorHandle {
    engine: Option<Arc<Mutex<MonitorEngine>>>,
}

impl MonitorHandle {
    /// A disabled handle: every operation is a no-op (the default).
    pub fn disabled() -> Self {
        MonitorHandle { engine: None }
    }

    /// A live handle running the standard detector suite
    /// ([`MonitorConfig::standard`]).
    pub fn enabled() -> Self {
        MonitorHandle::with_config(&MonitorConfig::standard())
    }

    /// A live handle running `config`'s detectors.
    pub fn with_config(config: &MonitorConfig) -> Self {
        MonitorHandle { engine: Some(Arc::new(Mutex::new(MonitorEngine::new(config)))) }
    }

    /// A live handle running `config`'s detectors.
    #[deprecated(since = "0.1.0", note = "renamed to `MonitorHandle::with_config`")]
    pub fn new(config: &MonitorConfig) -> Self {
        MonitorHandle::with_config(config)
    }

    /// Whether this handle carries a live engine.
    pub fn is_enabled(&self) -> bool {
        self.engine.is_some()
    }

    fn lock(&self) -> Option<MutexGuard<'_, MonitorEngine>> {
        // A panic while holding the lock poisons it; the engine state
        // itself is still coherent (detectors mutate before any panic
        // path), so keep observing rather than silently going dark.
        self.engine.as_ref().map(|e| e.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Incrementally scans everything `telemetry` has recorded since the
    /// previous scan, under the telemetry sink lock (no cloning). No-op
    /// when either handle is disabled.
    pub fn scan(&self, telemetry: &TelemetryHandle) {
        if let Some(mut engine) = self.lock() {
            if engine.has_detectors() {
                telemetry.visit(|spans, events| engine.observe(spans, events));
            }
        }
    }

    /// Ends the run: one final scan, then the detectors' finish hooks
    /// against the final metrics. Returns the canonical timeline, or
    /// `None` when this handle is disabled. Idempotent.
    pub fn finish(&self, telemetry: &TelemetryHandle) -> Option<IncidentTimeline> {
        let mut engine = self.lock()?;
        if engine.has_detectors() {
            telemetry.visit(|spans, events| engine.observe(spans, events));
        }
        let mut timeline = None;
        telemetry.with_metrics(|metrics| timeline = Some(engine.finish(metrics)));
        // A disabled telemetry handle never ran with_metrics; finish
        // against an empty registry so the timeline still materialises.
        Some(timeline.unwrap_or_else(|| engine.finish(&pipetune_telemetry::MetricsRegistry::new())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_telemetry::{SpanId, SpanKind};

    #[test]
    fn disabled_handle_is_a_no_op() {
        let telemetry = TelemetryHandle::enabled();
        let monitor = MonitorHandle::disabled();
        assert!(!monitor.is_enabled());
        monitor.scan(&telemetry);
        assert!(monitor.finish(&telemetry).is_none());
    }

    #[test]
    fn incremental_scans_equal_one_final_scan() {
        let build = |scans: usize| {
            let telemetry = TelemetryHandle::enabled();
            let monitor = MonitorHandle::with_config(&MonitorConfig::standard());
            let trial =
                telemetry.open_span(SpanId::NONE, SpanKind::Trial, "trial 0", 0.0, vec![]);
            for e in 0..12u32 {
                let start = f64::from(e) * 10.0;
                let dur = if e == 11 { 500.0 } else { 10.0 };
                let span = telemetry
                    .open_span(trial, SpanKind::Epoch, format!("epoch {e}"), start, vec![]);
                telemetry.close_span(span, start + dur);
                if scans > 0 && (e as usize).is_multiple_of(scans) {
                    monitor.scan(&telemetry);
                }
            }
            telemetry.close_span(trial, 610.0);
            monitor.finish(&telemetry).unwrap()
        };
        let one_shot = build(0);
        assert_eq!(one_shot.count_for("stall"), 1);
        for scans in [1, 2, 5] {
            assert_eq!(build(scans), one_shot);
            assert_eq!(build(scans).to_json_string(), one_shot.to_json_string());
        }
    }

    #[test]
    fn finish_works_against_disabled_telemetry() {
        let monitor = MonitorHandle::with_config(&MonitorConfig::standard());
        let timeline = monitor.finish(&TelemetryHandle::disabled()).unwrap();
        assert!(timeline.is_empty());
    }
}
