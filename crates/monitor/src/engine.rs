//! The streaming evaluation engine: cursor-based incremental scans over
//! the telemetry stream, a pluggable [`Detector`] framework, and the
//! [`IncidentTimeline`] the firings collect into.

use pipetune_telemetry::{Event, MetricsRegistry, Span, SpanKind, TelemetrySnapshot};

use crate::alert::{Alert, IncidentTimeline};
use crate::detectors::{
    CacheThrashConfig, CacheThrashDetector, CrashLoopConfig, CrashLoopDetector, QueueGrowthConfig,
    QueueGrowthDetector, SloBurnConfig, SloBurnDetector, StallConfig, StallDetector,
};

/// Incrementally built structural index of the trace: span kinds, labels
/// and parent links, so detectors can resolve source paths and ancestors
/// without re-walking the span vector.
#[derive(Debug, Default)]
pub struct TraceIndex {
    kinds: Vec<SpanKind>,
    labels: Vec<String>,
    parents: Vec<Option<u32>>,
}

impl TraceIndex {
    fn record(&mut self, span: &Span) {
        self.kinds.push(span.kind);
        self.labels.push(span.label.clone());
        self.parents.push(span.parent);
    }

    /// Number of spans indexed so far.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether no span has been indexed yet.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind of span `idx` (`None` when out of range).
    pub fn kind(&self, idx: u32) -> Option<SpanKind> {
        self.kinds.get(idx as usize).copied()
    }

    /// The nearest ancestor of `idx` (including `idx` itself) with the
    /// given kind.
    pub fn ancestor_of_kind(&self, idx: u32, kind: SpanKind) -> Option<u32> {
        let mut cursor = Some(idx);
        while let Some(i) = cursor {
            if self.kinds.get(i as usize)? == &kind {
                return Some(i);
            }
            cursor = *self.parents.get(i as usize)?;
        }
        None
    }

    /// Root-first human path of span `idx`, labels joined with `" > "`
    /// (the [`Alert::source`] format).
    pub fn path(&self, idx: u32) -> String {
        let mut labels = Vec::new();
        let mut cursor = Some(idx);
        while let Some(i) = cursor {
            let Some(label) = self.labels.get(i as usize) else { break };
            labels.push(label.as_str());
            cursor = self.parents.get(i as usize).copied().flatten();
        }
        labels.reverse();
        labels.join(" > ")
    }
}

impl std::ops::Index<u32> for TraceIndex {
    type Output = SpanKind;
    fn index(&self, idx: u32) -> &SpanKind {
        &self.kinds[idx as usize]
    }
}

/// A streaming detector: a pure function of the observation stream.
///
/// The engine delivers every span **once, at record time** (spans before
/// events within each scan) and every event once, in record order — the
/// same scheduler-request order the telemetry merge discipline pins, so
/// the delivered stream is byte-identical for any worker count *and* any
/// scan granularity. Two contract clauses keep live scans and offline
/// replay identical:
///
/// * A span's `end_secs` may still be the open sentinel (`NaN`) when
///   delivered live but finite when replayed from a finished trace —
///   only read it for kinds recorded complete (epoch spans; worker
///   buffers push them closed).
/// * An alert evaluated while processing an observation may only depend
///   on observations with timestamps at or before the trigger's — later
///   arrivals exist in an offline replay but not live.
pub trait Detector: Send {
    /// Canonical detector name (the `monitor.alerts.<name>` counter
    /// suffix and the timeline's `detector` field).
    fn name(&self) -> &'static str;

    /// Called once per span, at record time.
    fn on_span(&mut self, _ctx: &TraceIndex, _idx: u32, _span: &Span, _out: &mut Vec<Alert>) {}

    /// Called once per event, in record order.
    fn on_event(&mut self, _ctx: &TraceIndex, _idx: usize, _event: &Event, _out: &mut Vec<Alert>) {}

    /// Called once when the run is over, with the final metrics registry
    /// — the hook for end-of-run evidence like eviction-churn ratios.
    fn finish(&mut self, _ctx: &TraceIndex, _metrics: &MetricsRegistry, _out: &mut Vec<Alert>) {}
}

/// Which detectors run, with their window parameters. The default is the
/// empty set: an engine with no detectors never fires, injects nothing,
/// and leaves every artefact bit-identical to a build without the
/// monitor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MonitorConfig {
    /// Stall/straggler watchdog, when enabled.
    pub stall: Option<StallConfig>,
    /// Crash-loop detector, when enabled.
    pub crash_loop: Option<CrashLoopConfig>,
    /// Multi-window SLO burn-rate detector, when enabled.
    pub slo_burn: Option<SloBurnConfig>,
    /// Cache-thrash detector, when enabled.
    pub cache_thrash: Option<CacheThrashConfig>,
    /// Admission/queue-growth detector, when enabled.
    pub queue_growth: Option<QueueGrowthConfig>,
}

impl MonitorConfig {
    /// No detectors (the default): scanning is a cursor advance and
    /// nothing else.
    pub fn none() -> Self {
        MonitorConfig::default()
    }

    /// Every detector at its default window parameters — what
    /// `bench_headline --chaos` and `pipetune-trace watch` run.
    pub fn standard() -> Self {
        MonitorConfig {
            stall: Some(StallConfig::default()),
            crash_loop: Some(CrashLoopConfig::default()),
            slo_burn: Some(SloBurnConfig::default()),
            cache_thrash: Some(CacheThrashConfig::default()),
            queue_growth: Some(QueueGrowthConfig::default()),
        }
    }

    fn build(&self) -> Vec<Box<dyn Detector>> {
        let mut detectors: Vec<Box<dyn Detector>> = Vec::new();
        if let Some(cfg) = &self.stall {
            detectors.push(Box::new(StallDetector::new(cfg.clone())));
        }
        if let Some(cfg) = &self.crash_loop {
            detectors.push(Box::new(CrashLoopDetector::new(cfg.clone())));
        }
        if let Some(cfg) = &self.slo_burn {
            detectors.push(Box::new(SloBurnDetector::new(cfg.clone())));
        }
        if let Some(cfg) = &self.cache_thrash {
            detectors.push(Box::new(CacheThrashDetector::new(cfg.clone())));
        }
        if let Some(cfg) = &self.queue_growth {
            detectors.push(Box::new(QueueGrowthDetector::new(cfg.clone())));
        }
        detectors
    }
}

/// The streaming engine: feeds the telemetry stream through the
/// configured detectors and accumulates their firings.
///
/// Scans are **cursor-based and incremental** — each
/// [`MonitorEngine::observe`] call processes only the spans and events
/// recorded since the previous call, so a live engine scanned after
/// every scheduler round and an offline engine replaying the finished
/// trace in one shot deliver the *same* observation stream and produce
/// byte-identical timelines (pinned by `tests/monitor_determinism.rs`).
pub struct MonitorEngine {
    index: TraceIndex,
    detectors: Vec<Box<dyn Detector>>,
    span_cursor: usize,
    event_cursor: usize,
    fired: Vec<Alert>,
    finished: Option<IncidentTimeline>,
}

impl MonitorEngine {
    /// An engine running `config`'s detectors.
    pub fn new(config: &MonitorConfig) -> Self {
        MonitorEngine {
            index: TraceIndex::default(),
            detectors: config.build(),
            span_cursor: 0,
            event_cursor: 0,
            fired: Vec::new(),
            finished: None,
        }
    }

    /// Whether any detector is configured (an empty engine only advances
    /// cursors).
    pub fn has_detectors(&self) -> bool {
        !self.detectors.is_empty()
    }

    /// Processes everything recorded since the previous scan: new spans
    /// first (indexing each before delivery), then new events. `spans`
    /// and `events` must be the same growing vectors every time —
    /// i.e. one engine watches one telemetry sink.
    pub fn observe(&mut self, spans: &[Span], events: &[Event]) {
        debug_assert!(self.finished.is_none(), "observe after finish is ignored evidence");
        for (i, span) in spans.iter().enumerate().skip(self.span_cursor) {
            self.index.record(span);
            for detector in &mut self.detectors {
                detector.on_span(&self.index, i as u32, span, &mut self.fired);
            }
        }
        self.span_cursor = spans.len();
        for (i, event) in events.iter().enumerate().skip(self.event_cursor) {
            for detector in &mut self.detectors {
                detector.on_event(&self.index, i, event, &mut self.fired);
            }
        }
        self.event_cursor = events.len();
    }

    /// Convenience: one-shot scan of a finished snapshot (the offline
    /// `pipetune-trace watch` path).
    pub fn observe_snapshot(&mut self, snapshot: &TelemetrySnapshot) {
        self.observe(&snapshot.spans, &snapshot.events);
    }

    /// Ends the run: runs every detector's finish hook against the final
    /// metrics, sorts the firings into the canonical order and returns
    /// the timeline. Idempotent — later calls return the same timeline
    /// without re-running the hooks.
    pub fn finish(&mut self, metrics: &MetricsRegistry) -> IncidentTimeline {
        if let Some(done) = &self.finished {
            return done.clone();
        }
        for detector in &mut self.detectors {
            detector.finish(&self.index, metrics, &mut self.fired);
        }
        let timeline = IncidentTimeline::from_alerts(std::mem::take(&mut self.fired));
        self.finished = Some(timeline.clone());
        timeline
    }
}

impl std::fmt::Debug for MonitorEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorEngine")
            .field("detectors", &self.detectors.len())
            .field("span_cursor", &self.span_cursor)
            .field("event_cursor", &self.event_cursor)
            .field("fired", &self.fired.len())
            .field("finished", &self.finished.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipetune_telemetry::{AttrValue, EventKind};

    fn span(kind: SpanKind, label: &str, parent: Option<u32>, start: f64, end: f64) -> Span {
        Span { kind, label: label.into(), parent, start_secs: start, end_secs: end, attrs: vec![] }
    }

    #[test]
    fn trace_index_resolves_paths_and_ancestors() {
        let mut idx = TraceIndex::default();
        idx.record(&span(SpanKind::Service, "svc", None, 0.0, 10.0));
        idx.record(&span(SpanKind::Job, "job 0", Some(0), 0.0, 8.0));
        idx.record(&span(SpanKind::TuningRun, "run", Some(1), 0.0, 8.0));
        assert_eq!(idx.path(2), "svc > job 0 > run");
        assert_eq!(idx.ancestor_of_kind(2, SpanKind::Job), Some(1));
        assert_eq!(idx.ancestor_of_kind(2, SpanKind::TuningRun), Some(2));
        assert_eq!(idx.ancestor_of_kind(1, SpanKind::Epoch), None);
        assert_eq!(idx.kind(0), Some(SpanKind::Service));
        assert_eq!(idx.kind(9), None);
        assert_eq!(idx[1], SpanKind::Job);
    }

    /// A detector that alerts on every observation — enough to pin the
    /// scan-granularity invariance of the engine itself.
    struct EveryObservation;
    impl Detector for EveryObservation {
        fn name(&self) -> &'static str {
            "stall"
        }
        fn on_span(&mut self, ctx: &TraceIndex, idx: u32, span: &Span, out: &mut Vec<Alert>) {
            out.push(Alert {
                detector: "stall",
                severity: crate::Severity::Info,
                source: ctx.path(idx),
                span: Some(idx),
                at_secs: span.start_secs,
                message: format!("span {idx}"),
                evidence: vec![],
            });
        }
        fn on_event(&mut self, _ctx: &TraceIndex, idx: usize, event: &Event, out: &mut Vec<Alert>) {
            out.push(Alert {
                detector: "stall",
                severity: crate::Severity::Info,
                source: String::new(),
                span: event.span,
                at_secs: event.at_secs,
                message: format!("event {idx}"),
                evidence: vec![],
            });
        }
    }

    #[test]
    fn incremental_scans_match_one_shot_replay() {
        let spans = vec![
            span(SpanKind::TuningRun, "run", None, 0.0, 100.0),
            span(SpanKind::Rung, "round 0", Some(0), 0.0, 50.0),
            span(SpanKind::Rung, "round 1", Some(0), 50.0, 100.0),
        ];
        let events = vec![
            Event { kind: EventKind::Fault, span: Some(1), at_secs: 10.0, attrs: vec![] },
            Event { kind: EventKind::Retry, span: Some(2), at_secs: 60.0, attrs: vec![] },
        ];
        let metrics = MetricsRegistry::new();

        let mut live = MonitorEngine::new(&MonitorConfig::none());
        live.detectors.push(Box::new(EveryObservation));
        // Three scans of growing prefixes (span/event arrival interleaved).
        live.observe(&spans[..1], &events[..0]);
        live.observe(&spans[..2], &events[..1]);
        live.observe(&spans, &events);
        let live_timeline = live.finish(&metrics);

        let mut offline = MonitorEngine::new(&MonitorConfig::none());
        offline.detectors.push(Box::new(EveryObservation));
        offline.observe(&spans, &events);
        let offline_timeline = offline.finish(&metrics);

        assert_eq!(live_timeline, offline_timeline);
        assert_eq!(live_timeline.len(), 5);
        assert_eq!(live_timeline.to_json_string(), offline_timeline.to_json_string());
        // finish() is idempotent.
        assert_eq!(live.finish(&metrics), live_timeline);
    }

    #[test]
    fn empty_config_never_fires() {
        let mut engine = MonitorEngine::new(&MonitorConfig::none());
        assert!(!engine.has_detectors());
        engine.observe(
            &[span(SpanKind::TuningRun, "run", None, 0.0, 1.0)],
            &[Event {
                kind: EventKind::Fault,
                span: Some(0),
                at_secs: 0.5,
                attrs: vec![("fault", AttrValue::Str("node_crash".into()))],
            }],
        );
        assert!(engine.finish(&MetricsRegistry::new()).is_empty());
    }
}
