//! Random search (Bergstra & Bengio, 2012).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scheduler::BestTracker;
use crate::{Config, SearchSpace, TrialId, TrialReport, TrialRequest, TrialScheduler};

/// Random search: `n` seeded samples, each run for the full budget.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    pending: Vec<(TrialId, Config)>,
    outstanding: HashMap<TrialId, Config>,
    epochs_per_trial: u32,
    tracker: BestTracker,
    issued: bool,
}

impl RandomSearch {
    /// Samples `n` configurations from `space` with `seed`.
    pub fn new(space: SearchSpace, n: usize, epochs_per_trial: u32, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let pending =
            (0..n).map(|i| (TrialId(i as u64), space.sample(&mut rng))).collect();
        RandomSearch {
            pending,
            outstanding: HashMap::new(),
            epochs_per_trial,
            tracker: BestTracker::default(),
            issued: false,
        }
    }
}

impl TrialScheduler for RandomSearch {
    fn next_trials(&mut self) -> Vec<TrialRequest> {
        if self.issued {
            return Vec::new();
        }
        self.issued = true;
        let reqs: Vec<TrialRequest> = self
            .pending
            .drain(..)
            .map(|(id, config)| {
                self.outstanding.insert(id, config.clone());
                TrialRequest { id, config, epochs: self.epochs_per_trial }
            })
            .collect();
        for _ in &reqs {
            self.tracker.issue_epochs(self.epochs_per_trial);
        }
        reqs
    }

    fn report(&mut self, report: TrialReport) {
        let config = self
            .outstanding
            .remove(&report.id)
            .unwrap_or_else(|| panic!("report for unknown {}", report.id));
        self.tracker.observe(&config, report.score);
    }

    fn is_finished(&self) -> bool {
        self.issued && self.outstanding.is_empty()
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.tracker.best()
    }

    fn epochs_issued(&self) -> u64 {
        self.tracker.epochs_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamSpec;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)])
    }

    #[test]
    fn issues_n_unique_ids_once() {
        let mut r = RandomSearch::new(space(), 5, 3, 1);
        let reqs = r.next_trials();
        assert_eq!(reqs.len(), 5);
        let mut ids: Vec<u64> = reqs.iter().map(|r| r.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), 5);
        assert!(r.next_trials().is_empty());
        assert_eq!(r.epochs_issued(), 15);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = RandomSearch::new(space(), 3, 1, 42);
        let mut b = RandomSearch::new(space(), 3, 1, 42);
        assert_eq!(a.next_trials(), b.next_trials());
    }

    #[test]
    fn finds_the_best_reported_score() {
        let mut r = RandomSearch::new(space(), 4, 1, 7);
        for req in r.next_trials() {
            let score = req.config["x"].as_f64(); // maximise x itself
            r.report(TrialReport { id: req.id, score, epochs_run: 1 });
        }
        assert!(r.is_finished());
        let (cfg, score) = r.best().unwrap();
        assert_eq!(cfg["x"].as_f64(), score);
    }
}
