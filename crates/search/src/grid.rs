//! Exhaustive grid search.

use std::collections::HashMap;

use crate::scheduler::BestTracker;
use crate::{Config, SearchSpace, TrialId, TrialReport, TrialRequest, TrialScheduler};

/// Exhaustive grid search: every grid point runs for the full epoch budget.
///
/// This is the naive baseline whose cost explodes with the parameter count
/// (Fig. 1).
#[derive(Debug, Clone)]
pub struct GridSearch {
    pending: Vec<(TrialId, Config)>,
    outstanding: HashMap<TrialId, Config>,
    epochs_per_trial: u32,
    tracker: BestTracker,
    issued: bool,
}

impl GridSearch {
    /// Plans a grid with `per_param` points per ranged parameter, each trial
    /// running `epochs_per_trial` epochs.
    pub fn new(space: SearchSpace, per_param: usize, epochs_per_trial: u32) -> Self {
        let pending = space
            .grid(per_param)
            .into_iter()
            .enumerate()
            .map(|(i, c)| (TrialId(i as u64), c))
            .collect();
        GridSearch {
            pending,
            outstanding: HashMap::new(),
            epochs_per_trial,
            tracker: BestTracker::default(),
            issued: false,
        }
    }

    /// Number of grid points.
    pub fn num_trials(&self) -> usize {
        self.pending.len() + self.outstanding.len()
    }
}

impl TrialScheduler for GridSearch {
    fn next_trials(&mut self) -> Vec<TrialRequest> {
        if self.issued {
            return Vec::new();
        }
        self.issued = true;
        let reqs: Vec<TrialRequest> = self
            .pending
            .drain(..)
            .map(|(id, config)| {
                self.outstanding.insert(id, config.clone());
                TrialRequest { id, config, epochs: self.epochs_per_trial }
            })
            .collect();
        for _ in &reqs {
            self.tracker.issue_epochs(self.epochs_per_trial);
        }
        reqs
    }

    fn report(&mut self, report: TrialReport) {
        let config = self
            .outstanding
            .remove(&report.id)
            .unwrap_or_else(|| panic!("report for unknown {}", report.id));
        self.tracker.observe(&config, report.score);
    }

    fn is_finished(&self) -> bool {
        self.issued && self.outstanding.is_empty()
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.tracker.best()
    }

    fn epochs_issued(&self) -> u64 {
        self.tracker.epochs_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamSpec;

    #[test]
    fn grid_runs_every_point_once() {
        let space = SearchSpace::new(vec![
            ParamSpec::int_choice("a", &[1, 2, 3]),
            ParamSpec::int_choice("b", &[10, 20]),
        ]);
        let mut g = GridSearch::new(space, 3, 5);
        assert_eq!(g.num_trials(), 6);
        let reqs = g.next_trials();
        assert_eq!(reqs.len(), 6);
        assert!(g.next_trials().is_empty(), "single batch only");
        for r in reqs {
            let score = r.config["a"].as_f64() + r.config["b"].as_f64();
            g.report(TrialReport { id: r.id, score, epochs_run: 5 });
        }
        assert!(g.is_finished());
        let (best, score) = g.best().unwrap();
        assert_eq!(score, 23.0);
        assert_eq!(best["a"].as_i64(), 3);
        assert_eq!(g.epochs_issued(), 30);
    }

    #[test]
    #[should_panic(expected = "unknown")]
    fn unknown_report_panics() {
        let space = SearchSpace::new(vec![ParamSpec::int_choice("a", &[1])]);
        let mut g = GridSearch::new(space, 1, 1);
        let _ = g.next_trials();
        g.report(TrialReport { id: TrialId(99), score: 0.0, epochs_run: 1 });
    }
}
