//! Hyperparameter search: the reproduction's stand-in for Ray Tune.
//!
//! The paper drives trials through Tune (§6), selecting HyperBand as the
//! trial scheduler but noting that any of Tune's algorithms plug in. This
//! crate provides that narrow waist:
//!
//! * [`SearchSpace`] / [`ParamSpec`] / [`ParamValue`] — typed parameter
//!   domains (ranges or choices) with seeded sampling and grid enumeration;
//! * [`TrialScheduler`] — the scheduler interface (request trials, report
//!   scores, resume from checkpoints);
//! * implementations: [`GridSearch`], [`RandomSearch`], [`HyperBand`]
//!   (the paper's choice), [`Tpe`] (Bayesian-style), [`Genetic`].
//!
//! Scores are "higher is better" throughout; objectives such as
//! accuracy/duration ratios are composed by the middleware crate.
//!
//! # Example
//!
//! ```
//! use pipetune_search::{ParamSpec, RandomSearch, SearchSpace, TrialScheduler};
//!
//! let space = SearchSpace::new(vec![
//!     ParamSpec::float_range("learning_rate", 0.001, 0.1, true),
//!     ParamSpec::int_choice("batch_size", &[32, 64, 256, 1024]),
//! ]);
//! let mut sched = RandomSearch::new(space, 4, 10, 7);
//! let batch = sched.next_trials();
//! assert_eq!(batch.len(), 4);
//! ```

mod asha;
mod genetic;
mod grid;
mod hyperband;
mod random;
mod scheduler;
mod space;
mod tpe;

pub use asha::Asha;
pub use genetic::Genetic;
pub use grid::GridSearch;
pub use hyperband::HyperBand;
pub use random::RandomSearch;
pub use scheduler::{TrialId, TrialReport, TrialRequest, TrialScheduler};
pub use space::{Config, ParamSpec, ParamValue, SearchSpace, SpaceError};
pub use tpe::Tpe;
