//! The trial-scheduler interface (Tune's "narrow waist").

use crate::Config;

/// Identifier of a trial within one scheduler run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrialId(pub u64);

impl std::fmt::Display for TrialId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trial{}", self.0)
    }
}

/// A unit of work the scheduler wants executed.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRequest {
    /// Stable trial identity. HyperBand re-issues the same id with more
    /// epochs when a trial survives a rung; the runner resumes its model.
    pub id: TrialId,
    /// The configuration to train with.
    pub config: Config,
    /// Additional epochs to run now (on top of whatever the trial already
    /// ran under this id).
    pub epochs: u32,
}

/// A completed unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport {
    /// Which trial.
    pub id: TrialId,
    /// Score after the requested epochs; **higher is better**.
    pub score: f64,
    /// Epochs actually run for this request.
    pub epochs_run: u32,
}

/// A trial scheduler: the middleware asks for batches of trials, runs them
/// (possibly in parallel on the cluster), and reports scores back.
///
/// The contract:
/// 1. call [`TrialScheduler::next_trials`]; run every request;
/// 2. call [`TrialScheduler::report`] once per request;
/// 3. repeat until [`TrialScheduler::is_finished`].
///
/// Schedulers are deterministic given their construction seed.
pub trait TrialScheduler {
    /// The next batch of trials to execute. Empty while reports from the
    /// previous batch are still outstanding, and forever once finished.
    fn next_trials(&mut self) -> Vec<TrialRequest>;

    /// Reports one finished request.
    ///
    /// # Panics
    ///
    /// Implementations may panic when reporting an id that was never issued
    /// (a runner bug).
    fn report(&mut self, report: TrialReport);

    /// Returns `true` when no further trials will be issued.
    fn is_finished(&self) -> bool;

    /// Best configuration and score observed so far.
    fn best(&self) -> Option<(Config, f64)>;

    /// Total epochs issued so far (tuning-budget accounting).
    fn epochs_issued(&self) -> u64;
}

/// Shared bookkeeping for scheduler implementations: best-so-far and budget.
#[derive(Debug, Clone, Default)]
pub(crate) struct BestTracker {
    best: Option<(Config, f64)>,
    epochs_issued: u64,
}

impl BestTracker {
    pub(crate) fn observe(&mut self, config: &Config, score: f64) {
        if score.is_nan() {
            return;
        }
        match &self.best {
            Some((_, s)) if *s >= score => {}
            _ => self.best = Some((config.clone(), score)),
        }
    }

    pub(crate) fn issue_epochs(&mut self, epochs: u32) {
        self.epochs_issued += u64::from(epochs);
    }

    pub(crate) fn best(&self) -> Option<(Config, f64)> {
        self.best.clone()
    }

    pub(crate) fn epochs_issued(&self) -> u64 {
        self.epochs_issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamValue;

    #[test]
    fn best_tracker_keeps_maximum_and_ignores_nan() {
        let mut t = BestTracker::default();
        let mut c = Config::new();
        c.insert("x".into(), ParamValue::Int(1));
        t.observe(&c, 0.5);
        t.observe(&c, f64::NAN);
        t.observe(&c, 0.3);
        assert_eq!(t.best().unwrap().1, 0.5);
        t.observe(&c, 0.9);
        assert_eq!(t.best().unwrap().1, 0.9);
    }

    #[test]
    fn epoch_budget_accumulates() {
        let mut t = BestTracker::default();
        t.issue_epochs(10);
        t.issue_epochs(5);
        assert_eq!(t.epochs_issued(), 15);
    }
}
