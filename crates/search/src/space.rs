//! Typed parameter domains and configurations.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A sampled parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Integer-valued parameter (batch size, epochs, cores…).
    Int(i64),
    /// Real-valued parameter (learning rate, dropout…).
    Float(f64),
}

impl ParamValue {
    /// The value as an integer, truncating floats.
    pub fn as_i64(&self) -> i64 {
        match *self {
            ParamValue::Int(v) => v,
            ParamValue::Float(v) => v as i64,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> f64 {
        match *self {
            ParamValue::Int(v) => v as f64,
            ParamValue::Float(v) => v,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v:.4}"),
        }
    }
}

/// One parameter's domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// Continuous range; `log` scales sampling logarithmically (learning
    /// rates).
    FloatRange {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
        /// Sample on a log scale.
        log: bool,
    },
    /// Integer range, inclusive.
    IntRange {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Finite set of integer choices (e.g. batch sizes 32/64/256/1024).
    IntChoice(Vec<i64>),
    /// Finite set of float choices.
    FloatChoice(Vec<f64>),
}

/// A named parameter with a domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    name: String,
    domain: Domain,
}

/// Error type for space operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// A domain is empty or inverted.
    EmptyDomain {
        /// The offending parameter.
        param: String,
    },
}

impl fmt::Display for SpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceError::EmptyDomain { param } => write!(f, "empty domain for parameter {param}"),
        }
    }
}

impl Error for SpaceError {}

impl ParamSpec {
    /// A continuous range parameter.
    pub fn float_range(name: impl Into<String>, lo: f64, hi: f64, log: bool) -> Self {
        ParamSpec { name: name.into(), domain: Domain::FloatRange { lo, hi, log } }
    }

    /// An inclusive integer range parameter.
    pub fn int_range(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        ParamSpec { name: name.into(), domain: Domain::IntRange { lo, hi } }
    }

    /// A finite integer choice parameter.
    pub fn int_choice(name: impl Into<String>, values: &[i64]) -> Self {
        ParamSpec { name: name.into(), domain: Domain::IntChoice(values.to_vec()) }
    }

    /// A finite float choice parameter.
    pub fn float_choice(name: impl Into<String>, values: &[f64]) -> Self {
        ParamSpec { name: name.into(), domain: Domain::FloatChoice(values.to_vec()) }
    }

    /// The parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    fn validate(&self) -> Result<(), SpaceError> {
        let ok = match &self.domain {
            Domain::FloatRange { lo, hi, log } => {
                lo.is_finite() && hi.is_finite() && lo <= hi && (!log || *lo > 0.0)
            }
            Domain::IntRange { lo, hi } => lo <= hi,
            Domain::IntChoice(v) => !v.is_empty(),
            Domain::FloatChoice(v) => !v.is_empty(),
        };
        if ok {
            Ok(())
        } else {
            Err(SpaceError::EmptyDomain { param: self.name.clone() })
        }
    }

    /// Samples one value uniformly (log-uniformly for log ranges).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> ParamValue {
        match &self.domain {
            Domain::FloatRange { lo, hi, log } => {
                if *log {
                    let v = rng.gen_range(lo.ln()..=hi.ln()).exp();
                    ParamValue::Float(v)
                } else {
                    ParamValue::Float(rng.gen_range(*lo..=*hi))
                }
            }
            Domain::IntRange { lo, hi } => ParamValue::Int(rng.gen_range(*lo..=*hi)),
            Domain::IntChoice(v) => ParamValue::Int(v[rng.gen_range(0..v.len())]),
            Domain::FloatChoice(v) => ParamValue::Float(v[rng.gen_range(0..v.len())]),
        }
    }

    /// Representative grid values for grid search: choices enumerate fully;
    /// ranges are discretised into `per_param` points (log-spaced where
    /// configured).
    pub fn grid_values(&self, per_param: usize) -> Vec<ParamValue> {
        let n = per_param.max(1);
        match &self.domain {
            Domain::IntChoice(v) => v.iter().map(|&x| ParamValue::Int(x)).collect(),
            Domain::FloatChoice(v) => v.iter().map(|&x| ParamValue::Float(x)).collect(),
            Domain::IntRange { lo, hi } => {
                if n == 1 {
                    return vec![ParamValue::Int((lo + hi) / 2)];
                }
                (0..n)
                    .map(|i| {
                        let t = i as f64 / (n - 1) as f64;
                        ParamValue::Int(lo + ((hi - lo) as f64 * t).round() as i64)
                    })
                    .collect()
            }
            Domain::FloatRange { lo, hi, log } => {
                if n == 1 {
                    return vec![ParamValue::Float(if *log {
                        (lo.ln() + (hi / lo).ln() / 2.0).exp()
                    } else {
                        (lo + hi) / 2.0
                    })];
                }
                (0..n)
                    .map(|i| {
                        let t = i as f64 / (n - 1) as f64;
                        let v = if *log {
                            (lo.ln() + (hi.ln() - lo.ln()) * t).exp()
                        } else {
                            lo + (hi - lo) * t
                        };
                        ParamValue::Float(v)
                    })
                    .collect()
            }
        }
    }
}

/// A parameter assignment: one point in the search space.
pub type Config = BTreeMap<String, ParamValue>;

/// A set of parameters to optimise over.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    params: Vec<ParamSpec>,
}

impl SearchSpace {
    /// Builds a space; invalid domains panic early (they are programmer
    /// errors in experiment definitions).
    ///
    /// # Panics
    ///
    /// Panics when a parameter domain is empty or inverted.
    pub fn new(params: Vec<ParamSpec>) -> Self {
        for p in &params {
            p.validate().expect("search-space domains must be non-empty");
        }
        SearchSpace { params }
    }

    /// The parameter specs.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` when the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Samples one full configuration.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Config {
        self.params.iter().map(|p| (p.name().to_string(), p.sample(rng))).collect()
    }

    /// Full Cartesian grid with `per_param` points per ranged parameter.
    ///
    /// Grows exponentially in the parameter count — exactly the blow-up
    /// Fig. 1 demonstrates.
    pub fn grid(&self, per_param: usize) -> Vec<Config> {
        let mut configs: Vec<Config> = vec![Config::new()];
        for p in &self.params {
            let values = p.grid_values(per_param);
            let mut next = Vec::with_capacity(configs.len() * values.len());
            for c in &configs {
                for v in &values {
                    let mut c2 = c.clone();
                    c2.insert(p.name().to_string(), v.clone());
                    next.push(c2);
                }
            }
            configs = next;
        }
        configs
    }

    /// Merges `other`'s parameters into this space (used by Tune V2 to fold
    /// system parameters into the hyperparameter space).
    pub fn union(&self, other: &SearchSpace) -> SearchSpace {
        let mut params = self.params.clone();
        params.extend(other.params.iter().cloned());
        SearchSpace { params }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamSpec::float_range("lr", 0.001, 0.1, true),
            ParamSpec::int_choice("batch", &[32, 64, 256, 1024]),
            ParamSpec::int_range("epochs", 10, 100),
        ])
    }

    #[test]
    fn samples_stay_in_domain() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            let lr = c["lr"].as_f64();
            assert!((0.001..=0.1).contains(&lr), "lr {lr}");
            assert!([32, 64, 256, 1024].contains(&c["batch"].as_i64()));
            let e = c["epochs"].as_i64();
            assert!((10..=100).contains(&e));
        }
    }

    #[test]
    fn log_sampling_covers_low_decades() {
        let s = SearchSpace::new(vec![ParamSpec::float_range("lr", 0.001, 0.1, true)]);
        let mut rng = StdRng::seed_from_u64(2);
        let low = (0..500)
            .filter(|_| s.sample(&mut rng)["lr"].as_f64() < 0.01)
            .count();
        // Log-uniform → half the samples below the geometric midpoint 0.01.
        assert!((150..350).contains(&low), "low-decade count {low}");
    }

    #[test]
    fn grid_size_is_exponential_in_params() {
        let s = space();
        assert_eq!(s.grid(3).len(), 3 * 4 * 3); // ranges→3, choice→4
        let one = SearchSpace::new(vec![ParamSpec::int_range("x", 0, 9)]);
        assert_eq!(one.grid(3).len(), 3);
    }

    #[test]
    fn grid_values_hit_bounds() {
        let p = ParamSpec::int_range("x", 0, 10);
        let vals = p.grid_values(3);
        assert_eq!(vals[0].as_i64(), 0);
        assert_eq!(vals[2].as_i64(), 10);
    }

    #[test]
    fn union_concatenates_params() {
        let a = space();
        let b = SearchSpace::new(vec![ParamSpec::int_choice("cores", &[4, 8, 16])]);
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(u.sample(&mut rng).contains_key("cores"));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_choice_panics() {
        let _ = SearchSpace::new(vec![ParamSpec::int_choice("x", &[])]);
    }
}
