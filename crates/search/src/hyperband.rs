//! HyperBand (Li et al., JMLR 2017) — the scheduler the paper evaluates with.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scheduler::BestTracker;
use crate::{Config, SearchSpace, TrialId, TrialReport, TrialRequest, TrialScheduler};

#[derive(Debug, Clone)]
struct Bracket {
    /// Successive-halving schedule: rung index → (n_i, r_i).
    rungs: Vec<(usize, u32)>,
    /// Configurations sampled for this bracket (head of the list survives).
    alive: Vec<TrialId>,
    next_rung: usize,
}

/// HyperBand over a [`SearchSpace`].
///
/// `R` is the maximum epochs a single trial may consume and `eta` the
/// halving factor (the canonical 3 by default). Brackets trade the number of
/// sampled configurations against per-trial budget; within each bracket
/// successive halving promotes the top `1/eta` fraction at each rung.
///
/// Trials keep their [`TrialId`] across rungs, and re-issued requests carry
/// only the *additional* epochs, so runners resume checkpointed models
/// exactly as Tune does.
#[derive(Debug, Clone)]
pub struct HyperBand {
    space: SearchSpace,
    brackets: Vec<Bracket>,
    current_bracket: usize,
    configs: HashMap<TrialId, Config>,
    epochs_reached: HashMap<TrialId, u32>,
    rung_scores: HashMap<TrialId, f64>,
    last_scores: HashMap<TrialId, f64>,
    outstanding: usize,
    rung_issued: bool,
    tracker: BestTracker,
    next_id: u64,
    rng: StdRng,
}

impl HyperBand {
    /// Creates a HyperBand run with maximum per-trial budget `r_max` epochs
    /// and halving factor `eta` (≥ 2).
    ///
    /// # Panics
    ///
    /// Panics when `r_max` is zero or `eta < 2`.
    pub fn new(space: SearchSpace, r_max: u32, eta: u32, seed: u64) -> Self {
        assert!(r_max >= 1, "r_max must be at least 1");
        assert!(eta >= 2, "eta must be at least 2");
        let eta_f = f64::from(eta);
        let s_max = (f64::from(r_max).ln() / eta_f.ln()).floor() as i32;
        let budget = f64::from(s_max + 1) * f64::from(r_max);
        let mut hb = HyperBand {
            space,

            brackets: Vec::new(),
            current_bracket: 0,
            configs: HashMap::new(),
            epochs_reached: HashMap::new(),
            rung_scores: HashMap::new(),
            last_scores: HashMap::new(),
            outstanding: 0,
            rung_issued: false,
            tracker: BestTracker::default(),
            next_id: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        for s in (0..=s_max).rev() {
            let n = ((budget / f64::from(r_max)) * eta_f.powi(s) / f64::from(s + 1)).ceil()
                as usize;
            let r = f64::from(r_max) * eta_f.powi(-s);
            let mut rungs = Vec::new();
            for i in 0..=s {
                let n_i = ((n as f64) * eta_f.powi(-i)).floor().max(1.0) as usize;
                let r_i = (r * eta_f.powi(i)).round().max(1.0) as u32;
                rungs.push((n_i, r_i.min(r_max)));
            }
            // Sample the bracket's configurations up front (deterministic).
            let alive: Vec<TrialId> = (0..n)
                .map(|_| {
                    let id = TrialId(hb.next_id);
                    hb.next_id += 1;
                    let cfg = hb.space.sample(&mut hb.rng);
                    hb.configs.insert(id, cfg);
                    hb.epochs_reached.insert(id, 0);
                    id
                })
                .collect();
            hb.brackets.push(Bracket { rungs, alive, next_rung: 0 });
        }
        hb
    }

    /// Number of brackets in this run.
    pub fn num_brackets(&self) -> usize {
        self.brackets.len()
    }

    fn advance_rung(&mut self) {
        let bracket = &mut self.brackets[self.current_bracket];
        // Rank current rung by reported score, descending.
        let mut ranked: Vec<(TrialId, f64)> = bracket
            .alive
            .iter()
            .map(|id| (*id, self.rung_scores.get(id).copied().unwrap_or(f64::NEG_INFINITY)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        bracket.next_rung += 1;
        if bracket.next_rung < bracket.rungs.len() {
            let keep = bracket.rungs[bracket.next_rung].0;
            bracket.alive = ranked.into_iter().take(keep).map(|(id, _)| id).collect();
        } else {
            bracket.alive.clear();
            self.current_bracket += 1;
        }
        self.rung_scores.clear();
        self.rung_issued = false;
    }
}

impl TrialScheduler for HyperBand {
    fn next_trials(&mut self) -> Vec<TrialRequest> {
        if self.outstanding > 0 || self.is_finished() || self.rung_issued {
            return Vec::new();
        }
        let bracket = &self.brackets[self.current_bracket];
        let rung = bracket.next_rung;
        let (_, target) = bracket.rungs[rung];
        let mut reqs = Vec::new();
        for id in bracket.alive.clone() {
            let reached = self.epochs_reached[&id];
            let additional = target.saturating_sub(reached);
            if additional == 0 {
                // Budget rounding can make a rung a no-op for a trial; carry
                // its last observed score forward rather than re-running.
                let prev = self.last_scores.get(&id).copied().unwrap_or(f64::NEG_INFINITY);
                self.rung_scores.insert(id, prev);
                continue;
            }
            self.epochs_reached.insert(id, target);
            self.tracker.issue_epochs(additional);
            reqs.push(TrialRequest {
                id,
                config: self.configs[&id].clone(),
                epochs: additional,
            });
        }
        self.outstanding = reqs.len();
        self.rung_issued = true;
        if reqs.is_empty() {
            // Entire rung was a no-op (all budgets already met): advance.
            self.advance_rung();
            return self.next_trials();
        }
        reqs
    }

    fn report(&mut self, report: TrialReport) {
        assert!(
            self.configs.contains_key(&report.id),
            "report for unknown {}",
            report.id
        );
        assert!(self.outstanding > 0, "report with no outstanding trials");
        self.rung_scores.insert(report.id, report.score);
        self.last_scores.insert(report.id, report.score);
        self.tracker.observe(&self.configs[&report.id], report.score);
        self.outstanding -= 1;
        if self.outstanding == 0 {
            self.advance_rung();
        }
    }

    fn is_finished(&self) -> bool {
        self.current_bracket >= self.brackets.len()
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.tracker.best()
    }

    fn epochs_issued(&self) -> u64 {
        self.tracker.epochs_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamSpec;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)])
    }

    /// Runs HyperBand to completion with score = x (so best x survives).
    fn run(r_max: u32) -> HyperBand {
        let mut hb = HyperBand::new(space(), r_max, 3, 11);
        let mut guard = 0;
        while !hb.is_finished() {
            let reqs = hb.next_trials();
            assert!(!reqs.is_empty() || hb.is_finished(), "stuck scheduler");
            for r in reqs {
                let score = r.config["x"].as_f64();
                hb.report(TrialReport { id: r.id, score, epochs_run: r.epochs });
            }
            guard += 1;
            assert!(guard < 1000, "non-terminating");
        }
        hb
    }

    #[test]
    fn bracket_count_matches_formula() {
        let hb = HyperBand::new(space(), 81, 3, 0);
        assert_eq!(hb.num_brackets(), 5); // s_max = 4
        let hb = HyperBand::new(space(), 9, 3, 0);
        assert_eq!(hb.num_brackets(), 3);
    }

    #[test]
    fn completes_and_tracks_best() {
        let hb = run(27);
        let (cfg, score) = hb.best().unwrap();
        assert_eq!(cfg["x"].as_f64(), score);
        assert!(score > 0.8, "best-of-many should be high, got {score}");
    }

    #[test]
    fn budget_is_bounded_by_theory() {
        // Total epochs ≈ (s_max+1)² · R; allow rounding slack.
        let r_max = 27u32;
        let hb = run(r_max);
        let s_max = 3u64;
        let bound = (s_max + 1) * (s_max + 1) * u64::from(r_max);
        assert!(
            hb.epochs_issued() <= bound * 2,
            "{} epochs exceeds 2x theory bound {bound}",
            hb.epochs_issued()
        );
        assert!(hb.epochs_issued() > u64::from(r_max), "suspiciously little work");
    }

    #[test]
    fn survivors_are_top_scored() {
        let mut hb = HyperBand::new(space(), 9, 3, 5);
        let first = hb.next_trials();
        let n0 = first.len();
        // Report scores equal to x.
        let mut scored: Vec<(TrialId, f64)> =
            first.iter().map(|r| (r.id, r.config["x"].as_f64())).collect();
        for r in &first {
            hb.report(TrialReport {
                id: r.id,
                score: r.config["x"].as_f64(),
                epochs_run: r.epochs,
            });
        }
        let second = hb.next_trials();
        assert!(second.len() < n0, "rung should shrink: {} -> {}", n0, second.len());
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<TrialId> = scored.iter().take(second.len()).map(|(id, _)| *id).collect();
        for r in &second {
            assert!(top.contains(&r.id), "{} was not a top scorer", r.id);
        }
    }

    #[test]
    fn trials_resume_with_additional_epochs_only() {
        let mut hb = HyperBand::new(space(), 9, 3, 5);
        let first = hb.next_trials();
        let first_epochs = first[0].epochs;
        for r in &first {
            hb.report(TrialReport { id: r.id, score: 0.5, epochs_run: r.epochs });
        }
        let second = hb.next_trials();
        if let Some(r) = second.first() {
            assert!(r.epochs >= 1);
            assert!(first_epochs + r.epochs <= 9 + 1, "cumulative budget within R");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(9).best().unwrap();
        let b = run(9).best().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn r_max_one_degenerates_to_random_search() {
        let hb = run(1);
        assert!(hb.is_finished());
        assert!(hb.best().is_some());
    }
}
