//! Tree-structured Parzen Estimator (TPE)-style Bayesian optimisation.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scheduler::BestTracker;
use crate::{Config, SearchSpace, TrialId, TrialReport, TrialRequest, TrialScheduler};

/// Sequential Bayesian-style search: after a random warm-up, candidates are
/// sampled and ranked by the ratio of Parzen densities fitted to the "good"
/// (top-γ) and "bad" observation sets, per parameter.
///
/// This is the reproduction's stand-in for Tune's Bayesian optimisers (the
/// paper's architecture diagram lists "Bayesian gradient optimization" among
/// the pluggable algorithms).
#[derive(Debug, Clone)]
pub struct Tpe {
    space: SearchSpace,
    total_trials: usize,
    warmup: usize,
    gamma: f64,
    candidates: usize,
    epochs_per_trial: u32,
    history: Vec<(Config, f64)>,
    outstanding: HashMap<TrialId, Config>,
    issued: usize,
    tracker: BestTracker,
    rng: StdRng,
}

impl Tpe {
    /// Creates a TPE run of `total_trials` trials (first quarter random).
    pub fn new(space: SearchSpace, total_trials: usize, epochs_per_trial: u32, seed: u64) -> Self {
        Tpe {
            space,
            total_trials,
            warmup: (total_trials / 4).max(3),
            gamma: 0.25,
            candidates: 24,
            epochs_per_trial,
            history: Vec::new(),
            outstanding: HashMap::new(),
            issued: 0,
            tracker: BestTracker::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Parzen log-density of `x` under a set of 1-D observations (Gaussian
    /// kernels with a data-driven bandwidth).
    fn log_density(values: &[f64], x: f64) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        let spread = {
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            ((max - min) / values.len() as f64).max(1e-6)
        };
        let mut acc = 0.0f64;
        for &v in values {
            let z = (x - v) / spread;
            acc += (-0.5 * z * z).exp();
        }
        (acc / values.len() as f64 / spread).max(1e-12).ln()
    }

    fn propose(&mut self) -> Config {
        if self.history.len() < self.warmup {
            return self.space.sample(&mut self.rng);
        }
        // Split history into good (top gamma) and bad.
        let mut ranked: Vec<&(Config, f64)> = self.history.iter().collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let n_good = ((ranked.len() as f64) * self.gamma).ceil().max(1.0) as usize;
        let (good, bad) = ranked.split_at(n_good.min(ranked.len()));
        let mut best: Option<(Config, f64)> = None;
        for _ in 0..self.candidates {
            let cand = self.space.sample(&mut self.rng);
            let mut score = 0.0f64;
            for p in self.space.params() {
                let x = cand[p.name()].as_f64();
                let gv: Vec<f64> = good.iter().map(|(c, _)| c[p.name()].as_f64()).collect();
                let bv: Vec<f64> = bad.iter().map(|(c, _)| c[p.name()].as_f64()).collect();
                score += Self::log_density(&gv, x) - Self::log_density(&bv, x);
            }
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((cand, score));
            }
        }
        best.expect("candidates > 0").0
    }
}

impl TrialScheduler for Tpe {
    fn next_trials(&mut self) -> Vec<TrialRequest> {
        if !self.outstanding.is_empty() || self.issued >= self.total_trials {
            return Vec::new();
        }
        let config = self.propose();
        let id = TrialId(self.issued as u64);
        self.issued += 1;
        self.outstanding.insert(id, config.clone());
        self.tracker.issue_epochs(self.epochs_per_trial);
        vec![TrialRequest { id, config, epochs: self.epochs_per_trial }]
    }

    fn report(&mut self, report: TrialReport) {
        let config = self
            .outstanding
            .remove(&report.id)
            .unwrap_or_else(|| panic!("report for unknown {}", report.id));
        self.tracker.observe(&config, report.score);
        self.history.push((config, report.score));
    }

    fn is_finished(&self) -> bool {
        self.issued >= self.total_trials && self.outstanding.is_empty()
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.tracker.best()
    }

    fn epochs_issued(&self) -> u64 {
        self.tracker.epochs_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamSpec;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)])
    }

    /// Maximise a peaked objective; TPE should concentrate samples near the
    /// peak once warm.
    fn objective(x: f64) -> f64 {
        1.0 - (x - 0.7).abs()
    }

    fn run(seed: u64) -> Tpe {
        let mut tpe = Tpe::new(space(), 30, 5, seed);
        while !tpe.is_finished() {
            for r in tpe.next_trials() {
                let score = objective(r.config["x"].as_f64());
                tpe.report(TrialReport { id: r.id, score, epochs_run: r.epochs });
            }
        }
        tpe
    }

    #[test]
    fn beats_pure_chance_on_a_peaked_objective() {
        let tpe = run(3);
        let (_, best) = tpe.best().unwrap();
        assert!(best > 0.9, "best score {best}");
        assert_eq!(tpe.epochs_issued(), 150);
    }

    #[test]
    fn later_samples_concentrate_near_peak() {
        let tpe = run(5);
        let late: Vec<f64> =
            tpe.history.iter().skip(20).map(|(c, _)| c["x"].as_f64()).collect();
        let near = late.iter().filter(|&&x| (x - 0.7).abs() < 0.25).count();
        assert!(
            near * 2 > late.len(),
            "only {near}/{} late samples near the peak",
            late.len()
        );
    }

    #[test]
    fn sequential_one_trial_at_a_time() {
        let mut tpe = Tpe::new(space(), 5, 1, 1);
        let batch = tpe.next_trials();
        assert_eq!(batch.len(), 1);
        assert!(tpe.next_trials().is_empty(), "waits for report");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run(9).best().unwrap(), run(9).best().unwrap());
    }
}
