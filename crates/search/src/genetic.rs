//! Generational genetic search (evolutionary hyperparameter optimisation).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scheduler::BestTracker;
use crate::space::Domain;
use crate::{Config, ParamValue, SearchSpace, TrialId, TrialReport, TrialRequest, TrialScheduler};

/// Generational GA: tournament selection, uniform crossover, per-parameter
/// mutation. One of the paper's pluggable "genetic optimization" schedulers.
#[derive(Debug, Clone)]
pub struct Genetic {
    space: SearchSpace,
    population: usize,
    generations: usize,
    mutation_rate: f64,
    epochs_per_trial: u32,
    current: Vec<Config>,
    scores: Vec<Option<f64>>,
    outstanding: HashMap<TrialId, usize>,
    generation: usize,
    issued_this_gen: bool,
    tracker: BestTracker,
    rng: StdRng,
    next_id: u64,
}

impl Genetic {
    /// Creates a GA run of `generations × population` trials.
    ///
    /// # Panics
    ///
    /// Panics if `population < 2`.
    pub fn new(
        space: SearchSpace,
        population: usize,
        generations: usize,
        epochs_per_trial: u32,
        seed: u64,
    ) -> Self {
        assert!(population >= 2, "population must be at least 2");
        let mut rng = StdRng::seed_from_u64(seed);
        let current = (0..population).map(|_| space.sample(&mut rng)).collect();
        Genetic {
            space,
            population,
            generations,
            mutation_rate: 0.2,
            epochs_per_trial,
            current,
            scores: vec![None; population],
            outstanding: HashMap::new(),
            generation: 0,
            issued_this_gen: false,
            tracker: BestTracker::default(),
            rng,
            next_id: 0,
        }
    }

    fn tournament(&mut self) -> usize {
        let a = self.rng.gen_range(0..self.population);
        let b = self.rng.gen_range(0..self.population);
        let sa = self.scores[a].unwrap_or(f64::NEG_INFINITY);
        let sb = self.scores[b].unwrap_or(f64::NEG_INFINITY);
        if sa >= sb {
            a
        } else {
            b
        }
    }

    fn mutate_value(&mut self, name: &str) -> ParamValue {
        let spec = self
            .space
            .params()
            .iter()
            .find(|p| p.name() == name)
            .expect("mutating a known parameter");
        spec.sample(&mut self.rng)
    }

    fn breed(&mut self) -> Vec<Config> {
        let mut next = Vec::with_capacity(self.population);
        // Elitism: carry the best individual forward unchanged.
        let best_idx = (0..self.population)
            .max_by(|&a, &b| {
                self.scores[a]
                    .unwrap_or(f64::NEG_INFINITY)
                    .partial_cmp(&self.scores[b].unwrap_or(f64::NEG_INFINITY))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        next.push(self.current[best_idx].clone());
        while next.len() < self.population {
            let pa = self.tournament();
            let pb = self.tournament();
            let names: Vec<String> = self.current[pa].keys().cloned().collect();
            let mut child = Config::new();
            for name in names {
                let from_a = self.rng.gen::<bool>();
                let v = if self.rng.gen::<f64>() < self.mutation_rate {
                    self.mutate_value(&name)
                } else if from_a {
                    self.current[pa][&name].clone()
                } else {
                    self.current[pb][&name].clone()
                };
                child.insert(name, v);
            }
            next.push(child);
        }
        next
    }
}

// `Domain` is re-used indirectly through `ParamSpec::sample`; keep the import
// honest for future structured mutations (e.g. Gaussian perturbation on
// ranges).
#[allow(dead_code)]
fn _domain_marker(_: &Domain) {}

impl TrialScheduler for Genetic {
    fn next_trials(&mut self) -> Vec<TrialRequest> {
        if !self.outstanding.is_empty() || self.is_finished() || self.issued_this_gen {
            return Vec::new();
        }
        self.issued_this_gen = true;
        let mut reqs = Vec::with_capacity(self.population);
        for (i, cfg) in self.current.iter().enumerate() {
            let id = TrialId(self.next_id);
            self.next_id += 1;
            self.outstanding.insert(id, i);
            self.tracker.issue_epochs(self.epochs_per_trial);
            reqs.push(TrialRequest { id, config: cfg.clone(), epochs: self.epochs_per_trial });
        }
        reqs
    }

    fn report(&mut self, report: TrialReport) {
        let idx = self
            .outstanding
            .remove(&report.id)
            .unwrap_or_else(|| panic!("report for unknown {}", report.id));
        self.scores[idx] = Some(report.score);
        self.tracker.observe(&self.current[idx], report.score);
        if self.outstanding.is_empty() {
            self.generation += 1;
            if self.generation < self.generations {
                self.current = self.breed();
                self.scores = vec![None; self.population];
                self.issued_this_gen = false;
            }
        }
    }

    fn is_finished(&self) -> bool {
        self.generation >= self.generations && self.outstanding.is_empty()
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.tracker.best()
    }

    fn epochs_issued(&self) -> u64 {
        self.tracker.epochs_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamSpec;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![
            ParamSpec::float_range("x", 0.0, 1.0, false),
            ParamSpec::float_range("y", 0.0, 1.0, false),
        ])
    }

    fn objective(c: &Config) -> f64 {
        // Peak at (0.3, 0.8).
        2.0 - (c["x"].as_f64() - 0.3).abs() - (c["y"].as_f64() - 0.8).abs()
    }

    fn run(seed: u64) -> Genetic {
        let mut ga = Genetic::new(space(), 10, 8, 2, seed);
        while !ga.is_finished() {
            for r in ga.next_trials() {
                ga.report(TrialReport { id: r.id, score: objective(&r.config), epochs_run: 2 });
            }
        }
        ga
    }

    #[test]
    fn improves_over_generations() {
        let ga = run(4);
        let (_, best) = ga.best().unwrap();
        assert!(best > 1.7, "best {best}");
        assert_eq!(ga.epochs_issued(), 10 * 8 * 2);
    }

    #[test]
    fn elitism_preserves_best_score_monotonically() {
        let mut ga = Genetic::new(space(), 8, 5, 1, 7);
        let mut last_best = f64::NEG_INFINITY;
        while !ga.is_finished() {
            for r in ga.next_trials() {
                ga.report(TrialReport { id: r.id, score: objective(&r.config), epochs_run: 1 });
            }
            let (_, b) = ga.best().unwrap();
            assert!(b >= last_best);
            last_best = b;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run(2).best().unwrap(), run(2).best().unwrap());
    }

    #[test]
    #[should_panic(expected = "population")]
    fn tiny_population_panics() {
        let _ = Genetic::new(space(), 1, 1, 1, 0);
    }
}
