//! ASHA — asynchronous successive halving (Li et al., MLSys 2020).
//!
//! HyperBand's rungs are synchronisation barriers: every trial in a rung
//! must report before any survivor advances. ASHA removes the barrier: a
//! trial is promoted the moment it sits in the top `1/eta` of *currently
//! completed* results at its rung, and fresh configurations are sampled
//! whenever nothing is promotable. On a cluster this keeps every slot busy —
//! the natural next step for PipeTune's trial scheduling, included here as
//! an extension.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scheduler::BestTracker;
use crate::{Config, SearchSpace, TrialId, TrialReport, TrialRequest, TrialScheduler};

/// ASHA over a [`SearchSpace`].
#[derive(Debug, Clone)]
pub struct Asha {
    space: SearchSpace,
    eta: u32,
    r_base: u32,
    r_max: u32,
    max_trials: usize,
    batch: usize,
    /// Completed (trial, score) per rung index.
    rungs: Vec<Vec<(TrialId, f64)>>,
    /// Trials already promoted out of a rung.
    promoted: Vec<Vec<TrialId>>,
    configs: HashMap<TrialId, Config>,
    epochs_reached: HashMap<TrialId, u32>,
    /// Rung each outstanding trial is running toward.
    outstanding: HashMap<TrialId, usize>,
    sampled: usize,
    tracker: BestTracker,
    rng: StdRng,
}

impl Asha {
    /// Creates an ASHA run: up to `max_trials` sampled configurations,
    /// per-trial budget growing from 1 epoch by factors of `eta` up to
    /// `r_max`, issuing at most `batch` concurrent trials per
    /// [`TrialScheduler::next_trials`] call.
    ///
    /// # Panics
    ///
    /// Panics when `eta < 2`, `r_max` is zero or `max_trials` is zero.
    pub fn new(space: SearchSpace, r_max: u32, eta: u32, max_trials: usize, seed: u64) -> Self {
        assert!(eta >= 2, "eta must be at least 2");
        assert!(r_max >= 1, "r_max must be at least 1");
        assert!(max_trials >= 1, "max_trials must be at least 1");
        let mut n_rungs = 1usize;
        let mut r = 1u64;
        while r * u64::from(eta) <= u64::from(r_max) {
            r *= u64::from(eta);
            n_rungs += 1;
        }
        Asha {
            space,
            eta,
            r_base: 1,
            r_max,
            max_trials,
            batch: 4,
            rungs: vec![Vec::new(); n_rungs],
            promoted: vec![Vec::new(); n_rungs],
            configs: HashMap::new(),
            epochs_reached: HashMap::new(),
            outstanding: HashMap::new(),
            sampled: 0,
            tracker: BestTracker::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of rungs (budget levels).
    pub fn num_rungs(&self) -> usize {
        self.rungs.len()
    }

    /// Total epochs a trial should have run once it completes rung `k`.
    fn rung_budget(&self, k: usize) -> u32 {
        (u64::from(self.r_base) * u64::from(self.eta).pow(k as u32))
            .min(u64::from(self.r_max)) as u32
    }

    /// Finds one promotable trial: completed in rung `k`, in the top
    /// `1/eta` of rung `k` completions, not yet promoted.
    fn pop_promotable(&mut self) -> Option<(TrialId, usize)> {
        for k in (0..self.rungs.len().saturating_sub(1)).rev() {
            let done = &self.rungs[k];
            let quota = done.len() / self.eta as usize;
            if quota == 0 {
                continue;
            }
            let mut ranked = done.clone();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for &(id, _) in ranked.iter().take(quota) {
                if !self.promoted[k].contains(&id) && !self.outstanding.contains_key(&id) {
                    self.promoted[k].push(id);
                    return Some((id, k + 1));
                }
            }
        }
        None
    }
}

impl TrialScheduler for Asha {
    fn next_trials(&mut self) -> Vec<TrialRequest> {
        let mut reqs = Vec::new();
        while reqs.len() < self.batch {
            if let Some((id, rung)) = self.pop_promotable() {
                let target = self.rung_budget(rung);
                let reached = self.epochs_reached.get(&id).copied().unwrap_or(0);
                let additional = target.saturating_sub(reached);
                self.outstanding.insert(id, rung);
                if additional == 0 {
                    // Rounding made this promotion free; complete it with
                    // its previous score immediately at the next report�-less
                    // pass by recording it directly.
                    let score = self.rungs[rung - 1]
                        .iter()
                        .find(|(i, _)| *i == id)
                        .map(|(_, s)| *s)
                        .unwrap_or(f64::NEG_INFINITY);
                    self.outstanding.remove(&id);
                    self.rungs[rung].push((id, score));
                    continue;
                }
                self.epochs_reached.insert(id, target);
                self.tracker.issue_epochs(additional);
                reqs.push(TrialRequest {
                    id,
                    config: self.configs[&id].clone(),
                    epochs: additional,
                });
            } else if self.sampled < self.max_trials {
                let id = TrialId(self.sampled as u64);
                self.sampled += 1;
                let config = self.space.sample(&mut self.rng);
                self.configs.insert(id, config.clone());
                let budget = self.rung_budget(0);
                self.epochs_reached.insert(id, budget);
                self.outstanding.insert(id, 0);
                self.tracker.issue_epochs(budget);
                reqs.push(TrialRequest { id, config, epochs: budget });
            } else {
                break;
            }
        }
        reqs
    }

    fn report(&mut self, report: TrialReport) {
        let rung = self
            .outstanding
            .remove(&report.id)
            .unwrap_or_else(|| panic!("report for unknown {}", report.id));
        self.rungs[rung].push((report.id, report.score));
        self.tracker.observe(&self.configs[&report.id], report.score);
    }

    fn is_finished(&self) -> bool {
        if !self.outstanding.is_empty() || self.sampled < self.max_trials {
            return false;
        }
        // No outstanding work and no promotions left to make.
        let mut probe = self.clone();
        probe.pop_promotable().is_none()
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.tracker.best()
    }

    fn epochs_issued(&self) -> u64 {
        self.tracker.epochs_issued()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamSpec;

    fn space() -> SearchSpace {
        SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)])
    }

    fn run(max_trials: usize, r_max: u32, seed: u64) -> Asha {
        let mut asha = Asha::new(space(), r_max, 3, max_trials, seed);
        let mut guard = 0;
        while !asha.is_finished() {
            let reqs = asha.next_trials();
            assert!(!reqs.is_empty() || asha.is_finished(), "wedged");
            for r in reqs {
                let score = r.config["x"].as_f64();
                asha.report(TrialReport { id: r.id, score, epochs_run: r.epochs });
            }
            guard += 1;
            assert!(guard < 10_000, "non-terminating");
        }
        asha
    }

    #[test]
    fn rung_count_follows_eta_geometry() {
        assert_eq!(Asha::new(space(), 27, 3, 10, 0).num_rungs(), 4); // 1,3,9,27
        assert_eq!(Asha::new(space(), 9, 3, 10, 0).num_rungs(), 3);
        assert_eq!(Asha::new(space(), 1, 3, 10, 0).num_rungs(), 1);
    }

    #[test]
    fn completes_and_finds_a_good_configuration() {
        let asha = run(20, 9, 7);
        let (cfg, score) = asha.best().unwrap();
        assert_eq!(cfg["x"].as_f64(), score);
        assert!(score > 0.7, "best of 20 should be high: {score}");
    }

    #[test]
    fn per_trial_budget_never_exceeds_r_max() {
        let asha = run(15, 9, 3);
        for (&_, &epochs) in &asha.epochs_reached {
            assert!(epochs <= 9);
        }
        // Issued epochs accounted exactly.
        let total: u64 = asha.epochs_issued();
        assert!(total >= 15, "at least one epoch per sampled trial");
    }

    #[test]
    fn only_top_scorers_reach_the_final_rung() {
        let asha = run(30, 9, 11);
        let top_rung = asha.rungs.last().unwrap();
        assert!(!top_rung.is_empty(), "someone should graduate");
        // Every graduate scored above the median of rung 0.
        let mut rung0: Vec<f64> = asha.rungs[0].iter().map(|(_, s)| *s).collect();
        rung0.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rung0[rung0.len() / 2];
        for (_, s) in top_rung {
            assert!(*s >= median, "graduate scored {s} below rung-0 median {median}");
        }
    }

    #[test]
    fn issues_work_in_batches_without_barriers() {
        let mut asha = Asha::new(space(), 9, 3, 12, 5);
        let first = asha.next_trials();
        assert_eq!(first.len(), 4, "fills the batch");
        // Reporting a single trial lets the scheduler keep issuing without
        // waiting for the other three (no barrier).
        let r = &first[0];
        asha.report(TrialReport { id: r.id, score: 0.9, epochs_run: r.epochs });
        assert!(!asha.next_trials().is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run(12, 9, 2).best().unwrap(), run(12, 9, 2).best().unwrap());
    }
}
