//! Type-II scenario: tune the text models on News20 and watch PipeTune's
//! pipeline decisions (profile → ground truth → probe) at the epoch level.
//!
//! ```sh
//! cargo run --release --example text_tuning
//! ```

use pipetune::prelude::*;
use pipetune::{GroundTruth, ProbeGoal, SystemTuner, TrialExecution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), pipetune::PipeTuneError> {
    let env = ExperimentEnvBuilder::distributed(21).build()?;
    let options = TunerOptions::fast();

    // Part 1: watch a single pipelined trial make its decisions.
    println!("--- one pipelined trial, epoch by epoch ---");
    let hp = HyperParams { batch_size: 256, learning_rate: 0.05, ..HyperParams::default() };
    let workload = WorkloadSpec::cnn_news20().with_scale(options.scale).instantiate(&hp, 1)?;
    let mut gt = GroundTruth::paper_default(5);
    let mut trial = TrialExecution::new(workload, SystemTuner::pipelined(ProbeGoal::Runtime));
    let mut rng = StdRng::seed_from_u64(5);
    trial.run_epochs(&env, 10, Some(&mut gt), 1.0, &mut rng)?;
    for r in trial.records() {
        println!(
            "epoch {:>2}  {:>8}  {:>7.1}s  {:>8.1} kJ  phase {:?}",
            r.epoch,
            r.system.to_string(),
            r.duration_secs,
            r.energy_j / 1000.0,
            r.phase
        );
    }
    println!(
        "trial accuracy {:.1}%, total {:.0}s",
        trial.accuracy()? * 100.0,
        trial.duration_secs()
    );

    // Part 2: full HPT jobs on both Type-II workloads sharing a ground truth.
    println!("\n--- full jobs: cnn then lstm (shared ground truth) ---");
    let mut tuner = PipeTune::new(options);
    for spec in [WorkloadSpec::cnn_news20(), WorkloadSpec::lstm_news20()] {
        let out = tuner.run(&env, &spec)?;
        println!(
            "{:<13} accuracy {:>5.1}%  tuning {:>6.0}s  hits {}  probes {}",
            out.workload,
            out.best_accuracy * 100.0,
            out.tuning_secs,
            out.gt_stats.hits,
            out.gt_stats.recorded
        );
    }
    Ok(())
}
