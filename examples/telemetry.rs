//! Telemetry: trace a tuning run and print the human-readable summary.
//!
//! ```sh
//! cargo run --release --example telemetry
//! ```
//!
//! Pass `--json` to dump the full span/event/metrics trace instead,
//! `--tsdb` for influx-style line protocol (both stream to stdout, ready to
//! redirect into a file), or `--report` for the critical-path analysis
//! (per-phase attribution, rung utilization, stragglers — see
//! `docs/insight.md`):
//!
//! ```sh
//! cargo run --release --example telemetry -- --json > trace.json
//! cargo run --release --example telemetry -- --tsdb > trace.lp
//! cargo run --release --example telemetry -- --report
//! ```

use pipetune::prelude::*;
use pipetune_insight::TraceReport;
use pipetune_telemetry::TelemetryHandle;

fn main() -> Result<(), pipetune::PipeTuneError> {
    let mode = std::env::args().nth(1).unwrap_or_default();

    // Keep a clone of the handle: the environment carries one into the run,
    // ours reads the shared sink back out afterwards.
    let telemetry = TelemetryHandle::enabled();
    let env = ExperimentEnvBuilder::distributed(42).telemetry(telemetry.clone()).build()?;

    // Two jobs on the same workload family so the trace shows both the
    // probing path (job 1) and the ground-truth reuse path (job 2).
    let mut tuner = PipeTune::new(TunerOptions::fast());
    let spec = WorkloadSpec::lenet_mnist();
    tuner.run(&env, &spec)?;
    tuner.run(&env, &spec)?;

    let snapshot = telemetry.snapshot().expect("telemetry was enabled");
    match mode.as_str() {
        "--json" => println!("{}", snapshot.to_json_string()),
        "--tsdb" => print!("{}", snapshot.to_line_protocol()),
        "--report" => {
            let report = TraceReport::from_snapshot(&snapshot).expect("own traces validate");
            print!("{}", report.render());
        }
        _ => println!("{}", snapshot.summary_table()),
    }
    Ok(())
}
