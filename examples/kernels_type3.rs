//! Type-III scenario: the Rodinia-style iterative kernels, both standalone
//! (watch them converge) and under PipeTune on the single-node testbed.
//!
//! ```sh
//! cargo run --release --example kernels_type3
//! ```

use pipetune::prelude::*;
use pipetune_kernels::{
    Bfs, BfsConfig, IterativeKernel, Jacobi, JacobiConfig, SpKMeans, SpKMeansConfig,
};

fn main() -> Result<(), pipetune::PipeTuneError> {
    // Part 1: the kernels themselves — one epoch is one sweep/search/pass.
    println!("--- kernels converging, 8 epochs each ---");
    let mut kernels: Vec<Box<dyn IterativeKernel>> = vec![
        Box::new(Jacobi::new(&JacobiConfig::default(), 1)),
        Box::new(Bfs::new(&BfsConfig::default(), 2)),
        Box::new(SpKMeans::new(&SpKMeansConfig::default(), 3)),
    ];
    for k in &mut kernels {
        let mut last = 0.0f32;
        for _ in 0..8 {
            last = k.step().score;
        }
        println!("{:<9} score after 8 epochs: {:.3}", k.name(), last);
    }

    // Part 2: tune each kernel's parameters on the single-node testbed —
    // the paper's "short epochs" stress test (Fig. 12).
    println!("\n--- PipeTune on the single-node testbed ---");
    let env = ExperimentEnvBuilder::single_node(13).build()?;
    let mut tuner = PipeTune::new(TunerOptions::fast());
    for spec in WorkloadSpec::all_type3() {
        let out = tuner.run(&env, &spec)?;
        println!(
            "{:<9} best score {:>5.1}%  tuning {:>5.0}s  reuse hits {}",
            out.workload,
            out.best_accuracy * 100.0,
            out.tuning_secs,
            out.gt_stats.hits
        );
    }
    Ok(())
}
