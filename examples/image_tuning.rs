//! Type-I scenario: tune LeNet-5 on the two image datasets and compare all
//! three approaches (Tune V1, Tune V2, PipeTune), Table-2 style.
//!
//! ```sh
//! cargo run --release --example image_tuning
//! ```

use pipetune::prelude::*;
use pipetune::{single_tenancy};

fn main() -> Result<(), pipetune::PipeTuneError> {
    let env = ExperimentEnvBuilder::distributed(7).build()?;
    let options = TunerOptions::fast();
    let specs = [WorkloadSpec::lenet_mnist(), WorkloadSpec::lenet_fashion()];

    println!("tuning {} Type-I workloads with three approaches...\n", specs.len());
    let rows = single_tenancy(&env, &specs, &options)?;

    println!(
        "{:<16} {:<9} {:>9} {:>12} {:>11} {:>12}",
        "workload", "approach", "accuracy", "training[s]", "tuning[s]", "energy[kJ]"
    );
    for r in &rows {
        println!(
            "{:<16} {:<9} {:>8.1}% {:>12.0} {:>11.0} {:>12.1}",
            r.workload,
            r.approach,
            r.accuracy * 100.0,
            r.training_secs,
            r.tuning_secs,
            r.tuning_energy_j / 1000.0
        );
    }

    // The paper's reading: PipeTune keeps V1's accuracy at a fraction of the
    // tuning cost, while V2 trades accuracy for training speed.
    for chunk in rows.chunks(3) {
        let (v1, pt) = (&chunk[0], &chunk[2]);
        println!(
            "\n{}: PipeTune tunes {:.0}% faster than Tune V1 at {:+.1}pp accuracy",
            v1.workload,
            (1.0 - pt.tuning_secs / v1.tuning_secs) * 100.0,
            (pt.accuracy - v1.accuracy) * 100.0
        );
    }
    Ok(())
}
