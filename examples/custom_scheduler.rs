//! Extending the tuner: implementing your own `TrialScheduler`.
//!
//! The paper stresses that PipeTune "indirectly supports all [of Tune's]
//! hyperparameter optimization algorithms" because the scheduler is a narrow
//! interface. This example implements a tiny *median-stopping* scheduler
//! from scratch against `pipetune_search::TrialScheduler` and drives it over
//! a real workload, with PipeTune-style epoch accounting done by hand.
//!
//! ```sh
//! cargo run --release --example custom_scheduler
//! ```

use std::collections::HashMap;

use pipetune::prelude::*;
use pipetune::{EpochWorkload};
use pipetune_search::{
    Config, ParamSpec, SearchSpace, TrialId, TrialReport, TrialRequest, TrialScheduler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Median stopping: run trials one epoch at a time; kill any trial whose
/// score drops below the median of all completed scores at the same step.
struct MedianStopping {
    space: SearchSpace,
    max_trials: usize,
    max_epochs: u32,
    issued: usize,
    outstanding: Option<TrialId>,
    configs: HashMap<TrialId, Config>,
    epochs: HashMap<TrialId, u32>,
    history: Vec<f64>,
    best: Option<(Config, f64)>,
    total_epochs: u64,
    rng: StdRng,
}

impl MedianStopping {
    fn new(space: SearchSpace, max_trials: usize, max_epochs: u32, seed: u64) -> Self {
        MedianStopping {
            space,
            max_trials,
            max_epochs,
            issued: 0,
            outstanding: None,
            configs: HashMap::new(),
            epochs: HashMap::new(),
            history: Vec::new(),
            best: None,
            total_epochs: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn median(&self) -> f64 {
        if self.history.is_empty() {
            return f64::NEG_INFINITY;
        }
        let mut h = self.history.clone();
        h.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        h[h.len() / 2]
    }
}

impl TrialScheduler for MedianStopping {
    fn next_trials(&mut self) -> Vec<TrialRequest> {
        if self.outstanding.is_some() {
            return Vec::new();
        }
        // Continue the last trial if it survives, else start a fresh one.
        let id = TrialId(self.issued as u64);
        if self.issued < self.max_trials {
            let config = self
                .configs
                .entry(id)
                .or_insert_with(|| self.space.sample(&mut self.rng))
                .clone();
            self.outstanding = Some(id);
            self.total_epochs += 1;
            *self.epochs.entry(id).or_default() += 1;
            return vec![TrialRequest { id, config, epochs: 1 }];
        }
        Vec::new()
    }

    fn report(&mut self, report: TrialReport) {
        assert_eq!(Some(report.id), self.outstanding.take(), "unexpected report");
        let epochs = self.epochs[&report.id];
        let survives = report.score >= self.median() && epochs < self.max_epochs;
        self.history.push(report.score);
        if self
            .best
            .as_ref()
            .is_none_or(|(_, s)| report.score > *s)
        {
            self.best = Some((self.configs[&report.id].clone(), report.score));
        }
        if !survives {
            // Kill (or graduate) the trial; move to the next configuration.
            self.issued += 1;
        }
    }

    fn is_finished(&self) -> bool {
        self.outstanding.is_none() && self.issued >= self.max_trials
    }

    fn best(&self) -> Option<(Config, f64)> {
        self.best.clone()
    }

    fn epochs_issued(&self) -> u64 {
        self.total_epochs
    }
}

fn main() -> Result<(), pipetune::PipeTuneError> {
    let env = ExperimentEnvBuilder::distributed(77).build()?;
    let spec = WorkloadSpec::lenet_mnist().with_scale(0.3);
    let space = SearchSpace::new(vec![
        ParamSpec::float_range("learning_rate", 0.001, 0.1, true),
        ParamSpec::int_choice("batch_size", &[32, 64, 256]),
    ]);
    let mut sched = MedianStopping::new(space, 8, 6, 77);

    // Drive it by hand: one real training epoch per request, with the
    // simulated clock accounting PipeTune would normally do for us.
    let mut workloads: HashMap<u64, pipetune::WorkloadInstance> = HashMap::new();
    let mut sim_clock = 0.0f64;
    while !sched.is_finished() {
        for req in sched.next_trials() {
            let w = workloads.entry(req.id.0).or_insert_with(|| {
                let hp = HyperParams::from_config(&req.config);
                spec.instantiate(&hp, 1000 + req.id.0).expect("workload builds")
            });
            let out = w.run_epoch()?;
            sim_clock += env.cost.epoch_duration(&w.work_units(), &env.default_system, 1.0);
            sched.report(TrialReport {
                id: req.id,
                score: f64::from(out.train_score),
                epochs_run: 1,
            });
        }
    }
    let (config, score) = sched.best().expect("some trial scored");
    println!("median-stopping over {} epochs ({:.0}s simulated)", sched.epochs_issued(), sim_clock);
    println!(
        "best: lr {:.4}, batch {} → train accuracy {:.1}%",
        config["learning_rate"].as_f64(),
        config["batch_size"].as_i64(),
        score * 100.0
    );
    Ok(())
}
