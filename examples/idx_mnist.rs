//! Training on *real* MNIST via the IDX loader.
//!
//! Point the environment variables at the standard files and the example
//! trains LeNet-5 on the genuine dataset; without them it falls back to the
//! synthetic stand-in so the example always runs:
//!
//! ```sh
//! MNIST_IMAGES=train-images-idx3-ubyte MNIST_LABELS=train-labels-idx1-ubyte \
//!     cargo run --release --example idx_mnist
//! ```

use pipetune_data::{dataset_from_idx, mnist_like, ImageSpec};
use pipetune_dnn::{Dataset, LeNet5, Model, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn load() -> Result<(Dataset, Dataset, usize, &'static str), Box<dyn std::error::Error>> {
    match (std::env::var("MNIST_IMAGES"), std::env::var("MNIST_LABELS")) {
        (Ok(images), Ok(labels)) => {
            let data = dataset_from_idx(images.as_ref(), labels.as_ref(), 10)?;
            // Take a train/eval split off the front for a quick demo; real
            // MNIST is 28x28, which LeNet-5 supports natively.
            let n = data.len().min(2_000);
            let cut = n * 4 / 5;
            let idx_train: Vec<usize> = (0..cut).collect();
            let idx_test: Vec<usize> = (cut..n).collect();
            let train = Dataset::new(
                pipetune_dnn::Features::Images(data.gather_images(&idx_train)?),
                data.gather_labels(&idx_train),
                10,
            )?;
            let test = Dataset::new(
                pipetune_dnn::Features::Images(data.gather_images(&idx_test)?),
                data.gather_labels(&idx_test),
                10,
            )?;
            Ok((train, test, 28, "real MNIST (IDX files)"))
        }
        _ => {
            let spec = ImageSpec { train: 400, test: 100, ..ImageSpec::default() };
            let (train, test) = mnist_like(&spec, 7)?;
            Ok((train, test, 16, "synthetic MNIST stand-in (set MNIST_IMAGES/MNIST_LABELS for the real thing)"))
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (train, test, size, source) = load()?;
    println!("dataset: {source} — {} train / {} test examples", train.len(), test.len());

    let mut rng = StdRng::seed_from_u64(7);
    let mut model = LeNet5::with_input_size(size, 10, 0.1, &mut rng)?;
    let cfg = TrainConfig { batch_size: 32, learning_rate: 0.02, ..TrainConfig::default() };
    for epoch in 1..=6 {
        let m = model.train_epoch(&train, &cfg, &mut rng)?;
        println!(
            "epoch {epoch}: loss {:.3}, train accuracy {:.1}%",
            m.loss,
            m.accuracy * 100.0
        );
    }
    let acc = model.evaluate(&test)?;
    let cm = model.confusion(&test)?;
    println!("\nheld-out accuracy {:.1}%, macro-F1 {:.3}", acc * 100.0, cm.macro_f1());
    if let Some((confused_with, count)) = cm.top_confusion(0) {
        println!("class 0 is most often confused with class {confused_with} ({count} times)");
    }
    Ok(())
}
