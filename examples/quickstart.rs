//! Quickstart: tune one workload with PipeTune and print what it found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pipetune::prelude::*;

fn main() -> Result<(), pipetune::PipeTuneError> {
    // The simulated testbed: 4 nodes, paper system-parameter grid.
    let env = ExperimentEnvBuilder::distributed(42).build()?;

    // LeNet-5 on the synthetic MNIST stand-in (Table 3's first workload).
    let spec = WorkloadSpec::lenet_mnist();

    // A small tuning budget so the example finishes in seconds; see
    // TunerOptions::paper() for the harness profile.
    let mut tuner = PipeTune::new(TunerOptions::fast());
    let outcome = tuner.run(&env, &spec)?;

    println!("workload        : {}", outcome.workload);
    println!("best accuracy   : {:.1}%", outcome.best_accuracy * 100.0);
    println!(
        "best hyperparams: batch {}, lr {:.4}, dropout {:.2}, epochs {}",
        outcome.best_hp.batch_size,
        outcome.best_hp.learning_rate,
        outcome.best_hp.dropout,
        outcome.best_hp.epochs
    );
    println!("best system cfg : {}", outcome.best_system);
    println!("tuning time     : {:.0} s (simulated)", outcome.tuning_secs);
    println!("tuning energy   : {:.1} kJ", outcome.tuning_energy_j / 1000.0);
    println!(
        "ground truth    : {} probes recorded, {} reuse hits",
        outcome.gt_stats.recorded, outcome.gt_stats.hits
    );

    // Run the same workload again: the ground truth built by the first job
    // lets the second skip probing (Algorithm 1 lines 8-10).
    let second = tuner.run(&env, &spec)?;
    println!(
        "\nsecond job      : {:.0} s with {} reuse hits (history pays off)",
        second.tuning_secs, second.gt_stats.hits
    );
    Ok(())
}
