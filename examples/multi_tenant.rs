//! Multi-tenant scenario (§7.4): a Poisson trace of HPT jobs served FIFO on
//! a shared cluster; PipeTune's ground truth amortises probing across
//! tenants and cuts the average response time.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```

use pipetune::prelude::*;
use pipetune::{MultiTenancyOptions, multi_tenancy};

fn main() -> Result<(), pipetune::PipeTuneError> {
    let env = ExperimentEnvBuilder::distributed(31).build()?;
    let options = TunerOptions::fast();
    let specs = [WorkloadSpec::lenet_mnist(), WorkloadSpec::cnn_news20()];
    let mt = MultiTenancyOptions { jobs: 4, arrival_rate_per_sec: 1.0 / 2000.0, seed: 31 };

    println!("running a {}-job Poisson trace under three tuners...\n", mt.jobs);
    let outcomes = multi_tenancy(&env, &specs, &options, &mt)?;

    println!("{:<10} {:>22}", "approach", "avg response time [s]");
    for o in &outcomes {
        println!("{:<10} {:>22.0}", o.approach, o.overall_secs);
        for (workload, secs) in &o.per_workload_secs {
            println!("  {workload:<20} {secs:>10.0}");
        }
    }

    let v1 = outcomes.iter().find(|o| o.approach == "TuneV1").expect("v1 present");
    let pt = outcomes.iter().find(|o| o.approach == "PipeTune").expect("pipetune present");
    println!(
        "\nPipeTune reduces the average response time by {:.0}% vs Tune V1 (paper: up to 30%)",
        (1.0 - pt.overall_secs / v1.overall_secs) * 100.0
    );
    Ok(())
}
