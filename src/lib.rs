//! Workspace root crate: re-exports the PipeTune reproduction's crates so
//! the runnable examples and cross-crate integration tests have a single
//! dependency surface.
//!
//! The interesting API lives in [`pipetune`] (the middleware) and the
//! substrate crates re-exported below.

pub use pipetune;
pub use pipetune_cluster as cluster;
pub use pipetune_clustering as clustering;
pub use pipetune_data as data;
pub use pipetune_dnn as dnn;
pub use pipetune_energy as energy;
pub use pipetune_kernels as kernels;
pub use pipetune_perfmon as perfmon;
pub use pipetune_search as search;
pub use pipetune_tensor as tensor;
pub use pipetune_tsdb as tsdb;
