//! The metric-name registry audit (see `pipetune_telemetry::names`).
//!
//! Every subsystem declares its metric vocabulary through
//! `metric_names!`, which also emits an enumerable `ALL_METRIC_NAMES`
//! slice. This suite runs the noisiest pipelines we have — a faulty
//! standalone tuning run with the epoch cache, and a chaos service
//! stream with the full monitor detector set injected back into the
//! trace — and asserts that **every name they record is registered** in
//! some subsystem's slice. A typo'd emission site
//! (`service.admissions.rejected` vs `service.admission.rejected`)
//! fails here before it can silently split a dashboard series.

use pipetune::{
    EpochCacheConfig, EpochCacheHandle, ExperimentEnv, PipeTune, TunerOptions, WorkloadSpec,
};
use pipetune_cluster::{FaultPlan, PoissonArrivals, ServiceFaultPlan};
use pipetune_monitor::{MonitorConfig, MonitorHandle};
use pipetune_service::{JobSubmission, SchedulingPolicy, ServiceConfig, TuningService};
use pipetune_telemetry::{names, TelemetryHandle, TelemetrySnapshot};

/// The union of every subsystem's declared vocabulary.
const REGISTRIES: &[&[&str]] = &[
    pipetune::observe::ALL_METRIC_NAMES,
    pipetune_cluster::observe::ALL_METRIC_NAMES,
    pipetune_energy::observe::ALL_METRIC_NAMES,
    pipetune_monitor::observe::ALL_METRIC_NAMES,
    pipetune_perfmon::observe::ALL_METRIC_NAMES,
    pipetune_service::observe::ALL_METRIC_NAMES,
];

fn assert_all_registered(snapshot: &TelemetrySnapshot, context: &str) {
    let missing = names::unregistered(snapshot, REGISTRIES);
    assert!(
        missing.is_empty(),
        "{context} emitted unregistered metric names: {missing:?} \
         (declare them via metric_names! in the owning observe module)"
    );
}

#[test]
fn registries_are_disjoint_and_well_formed() {
    let mut all: Vec<&str> = REGISTRIES.iter().flat_map(|s| s.iter().copied()).collect();
    let total = all.len();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), total, "two observe modules declare the same metric name");
    for name in all {
        assert!(
            !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || "._".contains(c)),
            "metric name {name:?} breaks the lowercase dotted convention"
        );
    }
}

#[test]
fn faulty_cached_tuning_run_emits_only_registered_names() {
    let telemetry = TelemetryHandle::enabled();
    let env = ExperimentEnv::distributed(41)
        .with_workers(4)
        .with_fault_plan(FaultPlan::mixed(7))
        .with_epoch_cache(EpochCacheHandle::with_config(EpochCacheConfig::default()))
        .with_telemetry(telemetry.clone());
    let mut tuner = PipeTune::new(TunerOptions::fast());
    // Two identical runs: the second exercises ground-truth reuse and
    // the epoch-cache hit/miss/evict counters.
    tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("cold run");
    tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("warm run");
    let snap = telemetry.snapshot().expect("enabled handle");
    assert_all_registered(&snap, "faulty cached tuning run");
}

#[test]
fn chaos_service_stream_with_monitor_emits_only_registered_names() {
    let telemetry = TelemetryHandle::enabled();
    let monitor = MonitorHandle::with_config(&MonitorConfig::standard());
    let env = ExperimentEnv::distributed(41)
        .with_workers(4)
        .with_telemetry(telemetry.clone())
        .with_monitor(monitor.clone());
    let config = ServiceConfig::default()
        .with_policy(SchedulingPolicy::ALL[0])
        .with_service_faults(ServiceFaultPlan::mixed(41))
        .with_deadline(20_000.0);
    let mut arrivals = PoissonArrivals::new(1.0 / 1500.0, 41);
    let submissions: Vec<JobSubmission> = (0..3)
        .map(|_| {
            JobSubmission::new(arrivals.next_arrival().as_secs_f64(), WorkloadSpec::lenet_mnist())
        })
        .collect();
    TuningService::new(config)
        .run(&env, &submissions, &TunerOptions::fast())
        .expect("service runs");

    let timeline = monitor.finish(&telemetry).expect("live monitor");
    let mut snap = telemetry.snapshot().expect("enabled handle");
    // Folding the timeline back into the trace adds the `monitor.*`
    // counters — those must be registered like everything else.
    timeline.inject_into(&mut snap);
    assert!(!timeline.is_empty(), "chaos stream should fire at least one detector");
    assert_all_registered(&snap, "chaos service stream with live monitor");
}
