//! The deprecated constructors kept for one release must stay functional:
//! they compile (with a deprecation warning, silenced here) and behave
//! exactly like their `with_config` replacements.

use pipetune::prelude::*;

#[test]
#[allow(deprecated)]
fn deprecated_handle_constructors_match_with_config() {
    let cfg = MonitorConfig::standard();
    let old = MonitorHandle::new(&cfg);
    let new = MonitorHandle::with_config(&cfg);
    assert_eq!(old.is_enabled(), new.is_enabled());

    let cache_cfg = EpochCacheConfig::default();
    let old = EpochCacheHandle::new(cache_cfg);
    let new = EpochCacheHandle::with_config(cache_cfg);
    assert_eq!(old.is_enabled(), new.is_enabled());
    assert!(new.is_enabled());
}

#[test]
fn handle_trio_exposes_uniform_states() {
    // The unified vocabulary: every handle has `disabled()`, an
    // `enabled()`/`with_config` pair, and `is_enabled()`.
    assert!(!TelemetryHandle::disabled().is_enabled());
    assert!(TelemetryHandle::enabled().is_enabled());
    assert!(!MonitorHandle::disabled().is_enabled());
    assert!(MonitorHandle::enabled().is_enabled());
    assert!(!EpochCacheHandle::disabled().is_enabled());
    assert!(EpochCacheHandle::enabled().is_enabled());
}
