//! Integration tests for the extension surfaces: DVFS probing, DBSCAN
//! ground truth, alternative schedulers, the Hotspot kernel and sampled
//! profiling — each driven through the full middleware, not in isolation.

use pipetune::{
    ExperimentEnv, PipeTune, ProbeGoal, SchedulerKind, SimilarityKind, TunerOptions, WorkloadSpec,
};
use pipetune_cluster::SystemConfig;

fn options() -> TunerOptions {
    TunerOptions::fast()
}

#[test]
fn dvfs_probing_explores_the_frequency_dimension() {
    let mut env = ExperimentEnv::distributed(3001);
    env.system_space.freq_mhz = vec![1800, SystemConfig::NOMINAL_FREQ_MHZ];
    let opts = TunerOptions { probe_goal: ProbeGoal::Energy, ..options() };
    let mut tuner = PipeTune::new(opts);
    let first = tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("first job");
    assert!(first.gt_stats.recorded > 0, "probing must happen");
    let second = tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("second job");
    // Whatever frequency won, the reused configuration is a grid member.
    assert!(env.system_space.contains(&second.best_system), "{}", second.best_system);
    assert!(second.gt_stats.hits > 0);
}

#[test]
fn dbscan_ground_truth_drives_a_full_tuning_run() {
    let env = ExperimentEnv::distributed(3002);
    let opts = TunerOptions {
        similarity: SimilarityKind::Dbscan { min_points: 3, eps_factor: 3.0 },
        ..options()
    };
    let mut tuner = PipeTune::new(opts);
    let first = tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("first job");
    let second = tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("second job");
    assert!(first.tuning_secs > 0.0 && second.tuning_secs > 0.0);
    assert!(
        second.gt_stats.hits > 0,
        "density gate should recognise the repeat family: {:?}",
        second.gt_stats
    );
}

#[test]
fn every_alternative_scheduler_completes_a_pipetune_job() {
    for kind in [
        SchedulerKind::Random { trials: 4 },
        SchedulerKind::Tpe { trials: 4 },
        SchedulerKind::Genetic { population: 4, generations: 2 },
        SchedulerKind::Asha { trials: 5 },
    ] {
        let env = ExperimentEnv::distributed(3003);
        let opts = TunerOptions { scheduler: kind, ..options() };
        let out = PipeTune::new(opts)
            .run(&env, &WorkloadSpec::cnn_news20())
            .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
        assert!(out.tuning_secs > 0.0, "{}", kind.name());
        assert!((0.0..=1.0).contains(&out.best_accuracy), "{}", kind.name());
        assert!(out.epochs_total > 0, "{}", kind.name());
    }
}

#[test]
fn hotspot_extension_tunes_on_the_single_node() {
    let env = ExperimentEnv::single_node(3004);
    let out = PipeTune::new(options())
        .run(&env, &WorkloadSpec::hotspot())
        .expect("hotspot job runs");
    assert!(out.best_accuracy > 0.0, "steady-state progress expected");
    assert!(out.model_weights.is_none(), "kernels carry no weights");
    // The winning time-step must come from the clamped stable range: the
    // tuner would otherwise have selected a diverging configuration with a
    // zero score.
    assert!(out.best_hp.learning_rate > 0.0);
}

#[test]
fn sampled_profiling_still_supports_reuse_for_long_epochs() {
    let mut env = ExperimentEnv::distributed(3005);
    env.sampled_profiling = true;
    let mut tuner = PipeTune::new(options());
    let _ = tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("first job");
    let second = tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("second job");
    assert!(
        second.gt_stats.hits + second.gt_stats.misses > 0,
        "lookups must happen under sampling"
    );
}

#[test]
fn frequency_shows_up_in_display_and_space_counting() {
    let mut env = ExperimentEnv::distributed(3006);
    env.system_space.freq_mhz = vec![1800, 2600, SystemConfig::NOMINAL_FREQ_MHZ];
    assert_eq!(env.system_space.len(), 3 * 4 * 3);
    let cfg = SystemConfig { freq_mhz: 1800, ..SystemConfig::new(8, 16) };
    assert_eq!(cfg.to_string(), "8c/16GB@1.8GHz");
    assert!(env.system_space.contains(&cfg));
    assert!((cfg.freq_ratio() - 1800.0 / 3500.0).abs() < 1e-12);
}
