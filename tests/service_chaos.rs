//! Chaos sweep for the service-level fault subsystem
//! (`pipetune-service` + `pipetune_cluster::ServiceFaultPlan`).
//!
//! The suite drives real tuning-job streams through the service under
//! node churn, deterministic mid-service job crashes with checkpointed
//! resubmission, and deadline (SLO) shedding, and checks the global
//! invariants at every event:
//!
//! * **slot-pool conservation** — no sample ever leases more slots than
//!   the (time-varying) capacity, and no live job's slice rounds to zero;
//! * **no lost or duplicated jobs** — every submission resolves to
//!   exactly one typed [`JobOutcome`], and the service fault report's
//!   counters match the per-record tallies;
//! * **policy-invariant survivors** — churn draws key on the tick index
//!   and crash draws on `(job, attempt)`, so admitted jobs see the same
//!   capacity, tune to the same `TuningOutcome` and crash at the same
//!   points under every [`SchedulingPolicy`];
//! * **byte-identical everything across worker counts** — outcomes,
//!   fault reports, traces and metrics for workers ∈ {1, 4, 64}, faulty
//!   or clean (the repo-wide determinism contract).
//!
//! On top of the pinned schedules a small proptest sweep varies the plan
//! seed and policy. The invariants test also writes
//! `target/service_chaos_report.json` so CI can attach the fault picture
//! to a failing run.

use std::collections::BTreeMap;

use pipetune::{ExperimentEnv, TunerOptions, WorkloadSpec};
use pipetune_cluster::{ChurnKind, PoissonArrivals, ServiceFaultPlan, ServiceFaultReport};
use pipetune_service::{
    JobOutcome, JobRecord, JobSubmission, SchedulingPolicy, ServiceConfig, ServiceOutcome,
    TuningService,
};
use pipetune_telemetry::{TelemetryHandle, TelemetrySnapshot};
use proptest::prelude::*;

const JOBS: usize = 3;
const SEED: u64 = 41;
const WORKER_COUNTS: [usize; 3] = [1, 4, 64];
/// Sits near the clean streams' p95 response: most jobs complete, the
/// tail is shed — both paths exercised.
const DEADLINE_SECS: f64 = 20_000.0;

fn submissions(seed: u64, jobs: usize) -> Vec<JobSubmission> {
    let mut arrivals = PoissonArrivals::new(1.0 / 1500.0, seed);
    (0..jobs)
        .map(|_| {
            JobSubmission::new(arrivals.next_arrival().as_secs_f64(), WorkloadSpec::lenet_mnist())
        })
        .collect()
}

fn run_chaos(
    policy: SchedulingPolicy,
    workers: usize,
    config: ServiceConfig,
) -> (ServiceOutcome, TelemetrySnapshot) {
    let telemetry = TelemetryHandle::enabled();
    let env =
        ExperimentEnv::distributed(SEED).with_workers(workers).with_telemetry(telemetry.clone());
    let service = TuningService::new(config.with_policy(policy));
    let outcome = service.run(&env, &submissions(SEED, JOBS), &TunerOptions::fast()).unwrap();
    (outcome, telemetry.snapshot().expect("enabled handle"))
}

fn mixed_config() -> ServiceConfig {
    ServiceConfig::default()
        .with_service_faults(ServiceFaultPlan::mixed(SEED))
        .with_deadline(DEADLINE_SECS)
}

fn assert_records_identical(a: &JobRecord, b: &JobRecord) {
    assert_eq!(a.job, b.job);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.status, b.status);
    assert_eq!(a.attempts, b.attempts);
    assert_eq!(a.slots, b.slots);
    assert_eq!(a.arrival_secs.to_bits(), b.arrival_secs.to_bits());
    assert_eq!(a.service_secs.to_bits(), b.service_secs.to_bits());
    assert_eq!(a.start_secs.to_bits(), b.start_secs.to_bits());
    assert_eq!(a.completion_secs.to_bits(), b.completion_secs.to_bits());
    assert_eq!(a.response_secs.to_bits(), b.response_secs.to_bits());
    assert_eq!(a.queue_secs.to_bits(), b.queue_secs.to_bits());
    assert_eq!(a.drained_secs.to_bits(), b.drained_secs.to_bits());
    assert_eq!(a.lost_service_secs.to_bits(), b.lost_service_secs.to_bits());
    assert_eq!(a.backoff_secs.to_bits(), b.backoff_secs.to_bits());
    match (&a.outcome, &b.outcome) {
        (Some(x), Some(y)) => {
            assert_eq!(x.best_accuracy.to_bits(), y.best_accuracy.to_bits());
            assert_eq!(x.best_hp, y.best_hp);
            assert_eq!(x.tuning_secs.to_bits(), y.tuning_secs.to_bits());
            assert_eq!(x.epochs_total, y.epochs_total);
        }
        (None, None) => {}
        _ => panic!("job {}: outcome presence differs", a.job),
    }
}

fn assert_service_reports_identical(a: &ServiceFaultReport, b: &ServiceFaultReport) {
    assert_eq!(a.node_leaves, b.node_leaves);
    assert_eq!(a.node_joins, b.node_joins);
    assert_eq!(a.repartitions, b.repartitions);
    assert_eq!(a.job_crashes, b.job_crashes);
    assert_eq!(a.resubmissions, b.resubmissions);
    assert_eq!(a.jobs_shed, b.jobs_shed);
    assert_eq!(a.jobs_abandoned, b.jobs_abandoned);
    assert_eq!(a.lost_service_secs.to_bits(), b.lost_service_secs.to_bits());
    assert_eq!(a.backoff_secs.to_bits(), b.backoff_secs.to_bits());
}

/// The global invariants every chaos run must keep, whatever the plan.
fn assert_chaos_invariants(outcome: &ServiceOutcome) {
    // Slot-pool conservation under churn, at every event.
    assert!(!outcome.timeline.is_empty());
    for s in &outcome.timeline {
        assert!(
            s.slots_in_use <= s.capacity,
            "{:?}: {} slots leased with capacity {} at t={}",
            outcome.policy,
            s.slots_in_use,
            s.capacity,
            s.at_secs
        );
        assert!(s.in_service_jobs <= s.active_jobs);
        assert!(s.in_service_jobs == 0 || s.slots_in_use >= 1, "a live job lost its slice");
    }
    // No lost or duplicated jobs: exactly one record per submission,
    // each with a consistent terminal status.
    let mut seen = vec![false; outcome.jobs.len()];
    for r in &outcome.jobs {
        assert!(!std::mem::replace(&mut seen[r.job], true), "job {} duplicated", r.job);
        match r.status {
            JobOutcome::Completed => {
                assert!(r.admitted && r.completion_secs.is_finite(), "{r:?}");
                assert!(r.attempts >= 1);
            }
            JobOutcome::Rejected => {
                assert!(!r.admitted && r.outcome.is_none() && r.attempts == 0, "{r:?}");
            }
            JobOutcome::Shed | JobOutcome::Abandoned => {
                assert!(r.admitted && r.drained_secs.is_finite(), "{r:?}");
                assert!(r.completion_secs.is_nan() && r.response_secs.is_nan(), "{r:?}");
            }
        }
        assert!(r.slots >= 1 || !r.admitted, "an admitted job was sliced to zero slots");
        assert!(r.lost_service_secs >= 0.0 && r.backoff_secs >= 0.0);
    }
    assert!(seen.iter().all(|&s| s), "a submission produced no record");
    // Report counters match the per-record tallies.
    let report = &outcome.service_fault_report;
    let count = |status: JobOutcome| {
        outcome.jobs.iter().filter(|r| r.status == status).count() as u64
    };
    assert_eq!(report.jobs_shed, count(JobOutcome::Shed));
    assert_eq!(report.jobs_abandoned, count(JobOutcome::Abandoned));
    let lost: f64 = outcome.jobs.iter().map(|r| r.lost_service_secs).sum();
    assert!((report.lost_service_secs - lost).abs() < 1e-9);
    assert!(report.resubmissions <= report.job_crashes);
    assert!(report.node_joins <= report.node_leaves, "more nodes rejoined than left");
}

#[test]
fn chaos_outcomes_and_traces_identical_across_worker_counts() {
    for policy in SchedulingPolicy::ALL {
        let (base, base_snap) = run_chaos(policy, WORKER_COUNTS[0], mixed_config());
        base_snap.validate().expect("chaos traces are well-formed");
        let base_trace = base_snap.to_json_string();
        let base_metrics = base_snap.metrics_json_string();
        for workers in &WORKER_COUNTS[1..] {
            let (outcome, snap) = run_chaos(policy, *workers, mixed_config());
            assert_eq!(outcome.jobs.len(), base.jobs.len());
            for (x, y) in base.jobs.iter().zip(&outcome.jobs) {
                assert_records_identical(x, y);
            }
            assert_eq!(outcome.makespan_secs.to_bits(), base.makespan_secs.to_bits());
            assert_service_reports_identical(
                &base.service_fault_report,
                &outcome.service_fault_report,
            );
            assert_eq!(
                snap.to_json_string(),
                base_trace,
                "{policy:?}: chaos trace differs between workers=1 and workers={workers}"
            );
            assert_eq!(
                snap.metrics_json_string(),
                base_metrics,
                "{policy:?}: chaos metrics differ between workers=1 and workers={workers}"
            );
        }
    }
}

#[test]
fn chaos_invariants_hold_under_every_policy_and_the_report_is_persisted() {
    let mut reports: BTreeMap<String, ServiceFaultReport> = BTreeMap::new();
    let mut any_faults = false;
    for policy in SchedulingPolicy::ALL {
        let (outcome, snap) = run_chaos(policy, 2, mixed_config());
        assert_chaos_invariants(&outcome);
        let report = outcome.service_fault_report;
        any_faults |= !report.is_clean();
        // Applied churn must be visible in the trace, and vice versa.
        let trace = snap.to_json_string();
        assert_eq!(report.node_leaves + report.node_joins > 0, trace.contains("\"churn\""));
        assert_eq!(report.jobs_shed > 0, trace.contains("\"shed\""));
        reports.insert(policy.name().to_string(), report);
    }
    assert!(any_faults, "ServiceFaultPlan::mixed must actually fire");
    // Persist the fault picture for the CI artifact upload.
    std::fs::create_dir_all("target").unwrap();
    let json = serde_json::to_string_pretty(&reports).unwrap();
    std::fs::write("target/service_chaos_report.json", format!("{json}\n")).unwrap();
}

#[test]
fn admitted_jobs_and_their_crash_chains_are_policy_invariant() {
    let runs: Vec<ServiceOutcome> =
        SchedulingPolicy::ALL.into_iter().map(|p| run_chaos(p, 2, mixed_config()).0).collect();
    let base = &runs[0];
    for other in &runs[1..] {
        for (x, y) in base.jobs.iter().zip(&other.jobs) {
            // Admission and the tuning work are policy-invariant: churn
            // draws key on tick indices, so every policy sees the same
            // capacity at each arrival.
            assert_eq!(x.admitted, y.admitted);
            assert_eq!(x.slots, y.slots);
            assert_eq!(x.service_secs.to_bits(), y.service_secs.to_bits());
            if let (Some(ox), Some(oy)) = (&x.outcome, &y.outcome) {
                assert_eq!(ox.best_accuracy.to_bits(), oy.best_accuracy.to_bits());
                assert_eq!(ox.tuning_secs.to_bits(), oy.tuning_secs.to_bits());
            }
            // Jobs that survived (completed) under both policies crashed
            // at the same (job, attempt) points.
            if x.status == JobOutcome::Completed && y.status == JobOutcome::Completed {
                assert_eq!(x.attempts, y.attempts);
                assert_eq!(x.lost_service_secs.to_bits(), y.lost_service_secs.to_bits());
                assert_eq!(x.backoff_secs.to_bits(), y.backoff_secs.to_bits());
            }
        }
    }
}

#[test]
fn empty_plan_with_no_deadline_stays_clean() {
    let (outcome, snap) = run_chaos(SchedulingPolicy::Fifo, 2, ServiceConfig::default());
    assert!(outcome.service_fault_report.is_clean());
    assert!(outcome.jobs.iter().all(|r| r.status == JobOutcome::Completed));
    assert!(outcome.jobs.iter().all(|r| r.attempts == 1));
    assert!(outcome.timeline.iter().all(|s| s.capacity == outcome.slot_capacity));
    let trace = snap.to_json_string();
    assert!(!trace.contains("\"churn\""), "clean runs must not record churn events");
    assert!(!trace.contains("\"shed\""), "clean runs must not record shed events");
}

#[test]
fn certain_crashes_exhaust_the_resubmission_budget_into_abandonment() {
    let plan = ServiceFaultPlan::job_crashes(7, 1.0);
    let config = ServiceConfig::default().with_service_faults(plan);
    let (outcome, _) = run_chaos(SchedulingPolicy::Fifo, 2, config);
    assert_chaos_invariants(&outcome);
    let max = plan.resubmit.max_attempts;
    for r in &outcome.jobs {
        assert_eq!(r.status, JobOutcome::Abandoned, "{r:?}");
        assert_eq!(r.attempts, max);
        assert!(r.lost_service_secs > 0.0, "every crash loses at least the last partial epoch");
        // Backoff accrues for every resubmission, exactly per the policy.
        let expected: f64 = (0..max - 1).map(|a| plan.resubmit.backoff_secs(a)).sum();
        assert_eq!(r.backoff_secs.to_bits(), expected.to_bits());
    }
    let report = &outcome.service_fault_report;
    let n = outcome.jobs.len() as u64;
    assert_eq!(report.jobs_abandoned, n);
    assert_eq!(report.job_crashes, n * u64::from(max));
    assert_eq!(report.resubmissions, n * u64::from(max - 1));
}

#[test]
fn checkpointed_resubmission_resumes_rather_than_restarts() {
    let plan = ServiceFaultPlan::job_crashes(7, 1.0);
    let config = ServiceConfig::default().with_service_faults(plan);
    let (outcome, _) = run_chaos(SchedulingPolicy::Fifo, 2, config);
    for r in &outcome.jobs {
        let marks = r.outcome.as_ref().unwrap().checkpoint_marks();
        assert!(!marks.is_empty(), "real tuning runs have interior checkpoints");
        // Replay the crash chain from the plan: attempt a crashes at
        // fraction f_a of its remaining service, resumes from the last
        // checkpoint mark at or below its cumulative progress.
        let total = r.service_secs;
        let mut resume = 0.0f64;
        let mut lost_if_restarting = 0.0f64;
        let mut lost_with_checkpoints = 0.0f64;
        for attempt in 0..r.attempts {
            let frac = plan.crash_at(r.job as u64, attempt).expect("crash_prob is 1");
            let progress = resume + frac * (total - resume);
            lost_if_restarting += progress;
            let next = marks.iter().copied().filter(|&m| m <= progress).fold(0.0, f64::max);
            lost_with_checkpoints += progress - next;
            resume = next;
        }
        assert!(
            (r.lost_service_secs - lost_with_checkpoints).abs() < 1e-6 * total,
            "job {}: lost {} but the checkpoint chain predicts {}",
            r.job,
            r.lost_service_secs,
            lost_with_checkpoints
        );
        assert!(
            r.lost_service_secs < lost_if_restarting - 1e-9,
            "job {}: resubmission must resume from a checkpoint, not restart",
            r.job
        );
    }
}

#[test]
fn a_deadline_shorter_than_any_run_sheds_every_job() {
    let config = ServiceConfig::default().with_deadline(10.0);
    let (outcome, _) = run_chaos(SchedulingPolicy::ProcessorSharing, 2, config);
    assert_chaos_invariants(&outcome);
    for r in &outcome.jobs {
        assert_eq!(r.status, JobOutcome::Shed, "{r:?}");
        assert_eq!(r.drained_secs.to_bits(), (r.arrival_secs + 10.0).to_bits());
    }
    assert_eq!(outcome.service_fault_report.jobs_shed, outcome.jobs.len() as u64);
    assert_eq!(outcome.mean_response_secs, 0.0, "nothing completed");
}

#[test]
fn churn_to_a_single_slot_never_zeroes_a_live_jobs_slice() {
    // Deterministic shrink: every tick a node leaves (leave_prob 1 is
    // drawn before the join), down to the one-slot floor.
    let mut plan = ServiceFaultPlan::churn(5, 1.0);
    plan.churn_interval_secs = 500.0;
    plan.node_slots = 1;
    plan.min_slots = 1;
    let config = ServiceConfig::default().with_servers(2).with_service_faults(plan);
    let telemetry = TelemetryHandle::enabled();
    let env = ExperimentEnv::distributed(SEED)
        .with_workers(2)
        .with_parallel_slots(2)
        .with_telemetry(telemetry.clone());
    let subs = submissions(SEED, 2);
    let service = TuningService::new(config);
    let outcome = service.run(&env, &subs, &TunerOptions::fast()).unwrap();
    assert_chaos_invariants(&outcome);
    assert!(outcome.jobs.iter().all(|r| r.status == JobOutcome::Completed));
    assert!(outcome.jobs.iter().all(|r| r.slots >= 1));
    // The pool really shrank to the floor and stayed conservative there.
    let floor = outcome.timeline.iter().map(|s| s.capacity).min().unwrap();
    assert_eq!(floor, 1, "the leave-every-tick plan must reach the one-slot floor");
    assert!(outcome.service_fault_report.node_leaves >= 1);
    assert_eq!(outcome.service_fault_report.node_joins, 0, "leaves are drawn first");
}

#[test]
fn zero_servers_and_degenerate_deadlines_are_typed_errors() {
    let env = ExperimentEnv::distributed(SEED);
    let subs = submissions(SEED, 1);
    for config in [
        ServiceConfig::default().with_servers(0),
        ServiceConfig::default().with_deadline(0.0),
        ServiceConfig::default().with_deadline(f64::NAN),
        ServiceConfig::default().with_service_faults({
            // The constructors clamp; out-of-range probabilities can only
            // come from direct field edits, and validate must catch them.
            let mut p = ServiceFaultPlan::none();
            p.crash_prob = 2.0;
            p
        }),
        ServiceConfig::default().with_service_faults({
            let mut p = ServiceFaultPlan::churn(1, 0.5);
            p.node_slots = 0;
            p
        }),
        ServiceConfig::default().with_service_faults({
            let mut p = ServiceFaultPlan::job_crashes(1, 0.5);
            p.resubmit.max_attempts = 0;
            p
        }),
    ] {
        let err = TuningService::new(config)
            .run(&env, &subs, &TunerOptions::fast())
            .expect_err("degenerate configs must be rejected");
        assert!(
            matches!(err, pipetune::PipeTuneError::InvalidConfig { .. }),
            "expected InvalidConfig, got {err:?}"
        );
    }
}

proptest! {
    // Each case runs real tuning jobs; keep the sweep small — the pinned
    // tests above carry the deterministic load.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn random_fault_schedules_keep_the_global_invariants(
        plan_seed in 0u64..1_000,
        policy_idx in 0usize..3,
        deadline_secs in 8_000.0f64..40_000.0,
        use_deadline in 0u8..2,
    ) {
        let policy = SchedulingPolicy::ALL[policy_idx];
        let mut config = ServiceConfig::default()
            .with_service_faults(ServiceFaultPlan::mixed(plan_seed));
        if use_deadline == 1 {
            config = config.with_deadline(deadline_secs);
        }
        let telemetry = TelemetryHandle::enabled();
        let env = ExperimentEnv::distributed(SEED)
            .with_workers(2)
            .with_telemetry(telemetry.clone());
        let service = TuningService::new(config.with_policy(policy));
        let outcome =
            service.run(&env, &submissions(plan_seed, 2), &TunerOptions::fast()).unwrap();
        assert_chaos_invariants(&outcome);
        telemetry.snapshot().unwrap().validate().expect("chaos traces stay well-formed");
    }
}

// Unused-import guard: ChurnKind is part of the public chaos surface.
#[test]
fn churn_kinds_name_their_direction() {
    assert_eq!(ChurnKind::Leave.name(), "leave");
    assert_eq!(ChurnKind::Join.name(), "join");
}
