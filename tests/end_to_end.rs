//! End-to-end integration tests spanning every crate: real training under
//! the full PipeTune pipeline on the simulated cluster.

use pipetune::{
    multi_tenancy, single_tenancy, warm_start_ground_truth, ExperimentEnv, GroundTruth,
    MultiTenancyOptions, PipeTune, TuneV1, TuneV2, TunerOptions, WorkloadSpec,
};

fn options() -> TunerOptions {
    TunerOptions::fast()
}

#[test]
fn pipetune_beats_v1_tuning_time_with_warm_ground_truth() {
    let env = ExperimentEnv::distributed(1001);
    let spec = WorkloadSpec::lenet_mnist();
    let v1 = TuneV1::new(options()).run(&env, &spec).expect("v1 runs");
    let gt = warm_start_ground_truth(&env, &WorkloadSpec::all_type12(), &options())
        .expect("warm start");
    let pt = PipeTune::with_ground_truth(options(), gt).run(&env, &spec).expect("pipetune runs");
    assert!(
        pt.tuning_secs < v1.tuning_secs,
        "PipeTune {:.0}s should beat V1 {:.0}s",
        pt.tuning_secs,
        v1.tuning_secs
    );
    assert!(pt.tuning_energy_j < v1.tuning_energy_j, "energy should drop too");
    assert!((pt.best_accuracy - v1.best_accuracy).abs() < 0.15, "accuracy stays comparable");
    assert!(pt.gt_stats.hits > 0, "warm ground truth should be reused");
}

#[test]
fn v2_tunes_system_parameters_as_hyperparameters() {
    let env = ExperimentEnv::distributed(1002);
    let spec = WorkloadSpec::lenet_mnist();
    let v2 = TuneV2::new(options()).run(&env, &spec).expect("v2 runs");
    // V2's winner carries a system configuration drawn from the grid (§4);
    // cross-approach training-time comparisons live in the Table 2 harness
    // where the budget is large enough for the ratio effect to dominate
    // sampling noise.
    assert!(env.system_space.contains(&v2.best_system), "{} not in grid", v2.best_system);
    assert!(v2.tuning_secs > 0.0 && v2.training_secs > 0.0);
    assert!((0.0..=1.0).contains(&v2.best_accuracy));
}

#[test]
fn tuning_outcomes_are_bitwise_deterministic() {
    let run = || {
        let env = ExperimentEnv::distributed(1003);
        let gt = warm_start_ground_truth(&env, &[WorkloadSpec::cnn_news20()], &options())
            .expect("warm start");
        PipeTune::with_ground_truth(options(), gt)
            .run(&env, &WorkloadSpec::cnn_news20())
            .expect("job runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_accuracy, b.best_accuracy);
    assert_eq!(a.tuning_secs, b.tuning_secs);
    assert_eq!(a.tuning_energy_j, b.tuning_energy_j);
    assert_eq!(a.best_hp, b.best_hp);
}

#[test]
fn ground_truth_persists_and_reloads_across_processes() {
    let env = ExperimentEnv::distributed(1004);
    let mut tuner = PipeTune::new(options());
    let first = tuner.run(&env, &WorkloadSpec::lenet_mnist()).expect("first job");
    assert!(first.gt_stats.recorded > 0, "cold job should probe and record");

    let dir = std::env::temp_dir().join("pipetune_e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("gt_e2e.json");
    tuner.ground_truth().save(&path).expect("save");

    let gt = GroundTruth::load(&path, 2, options().threshold_factor, 0x6774).expect("load");
    let second = PipeTune::with_ground_truth(options(), gt)
        .run(&env, &WorkloadSpec::lenet_mnist())
        .expect("second job");
    assert!(second.gt_stats.hits > 0, "reloaded history should produce hits");
    std::fs::remove_file(&path).ok();
}

#[test]
fn single_tenancy_driver_covers_all_approaches_and_workloads() {
    let env = ExperimentEnv::distributed(1005);
    let specs = [WorkloadSpec::lenet_mnist(), WorkloadSpec::jacobi()];
    let rows = single_tenancy(&env, &specs, &options()).expect("driver runs");
    assert_eq!(rows.len(), 6);
    for r in &rows {
        assert!(r.tuning_secs > 0.0, "{}/{} has no tuning time", r.workload, r.approach);
        assert!(r.tuning_energy_j > 0.0);
        assert!((0.0..=1.0).contains(&r.accuracy));
    }
}

#[test]
fn multi_tenancy_responses_exceed_service_times_and_pipetune_wins() {
    let env = ExperimentEnv::distributed(1006);
    let specs = [WorkloadSpec::lenet_mnist()];
    let mt = MultiTenancyOptions { jobs: 3, arrival_rate_per_sec: 1.0 / 100.0, seed: 6 };
    let outcomes = multi_tenancy(&env, &specs, &options(), &mt).expect("trace runs");
    let v1 = outcomes.iter().find(|o| o.approach == "TuneV1").expect("v1 present");
    let pt = outcomes.iter().find(|o| o.approach == "PipeTune").expect("pipetune present");
    // With arrivals every ~100s and jobs lasting thousands of seconds, queueing
    // dominates: responses well above a single job's tuning time.
    assert!(v1.overall_secs > 1000.0);
    assert!(pt.overall_secs < v1.overall_secs, "ground truth must amortise across tenants");
}

#[test]
fn tuning_outputs_a_usable_trained_model() {
    // Fig. 6: the HPT job's output is a trained model + optimal parameters.
    let env = ExperimentEnv::distributed(1008);
    let out = PipeTune::new(options())
        .run(&env, &WorkloadSpec::lenet_mnist())
        .expect("job runs");
    let weights = out.model_weights.expect("DNN workloads carry weights");
    assert!(!weights.is_empty());
    // Rebuild the winning workload and confirm the weights reproduce the
    // reported accuracy exactly.
    let mut rebuilt = WorkloadSpec::lenet_mnist()
        .with_scale(options().scale)
        .instantiate(&out.best_hp, env.subseed(out.best_trial_id))
        .expect("rebuilds");
    rebuilt.import_weights(&weights).expect("weights fit");
    use pipetune::EpochWorkload;
    let acc = rebuilt.accuracy().expect("evaluates");
    assert!(
        (acc - out.best_accuracy).abs() < 1e-6,
        "rebuilt accuracy {acc} vs reported {}",
        out.best_accuracy
    );
}

#[test]
fn type3_single_node_pipeline_works_end_to_end() {
    let env = ExperimentEnv::single_node(1007);
    let mut tuner = PipeTune::new(options());
    for spec in WorkloadSpec::all_type3() {
        let out = tuner.run(&env, &spec).expect("kernel job runs");
        assert!(out.best_accuracy > 0.0, "{} got zero score", out.workload);
        assert!(out.tuning_secs > 0.0);
    }
    // Kernel families recorded in the shared ground truth enable reuse.
    let again = tuner.run(&env, &WorkloadSpec::jacobi()).expect("repeat job");
    assert!(again.gt_stats.hits > 0, "repeat kernel job should hit: {:?}", again.gt_stats);
}
