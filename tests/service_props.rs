//! Property suite for the multi-job tuning service (`pipetune-service`).
//!
//! Two layers:
//!
//! 1. **Real-service checks** — a Poisson stream of genuine PipeTune jobs
//!    runs under every policy, pinning the analytic cross-checks (FIFO and
//!    processor sharing reproduce `simulate_fifo` /
//!    `simulate_processor_sharing` within 1e-9 s), work conservation
//!    (policy-invariant makespan), slot-pool bounds at every event time,
//!    FIFO ordering, admission control and the single-job degeneration to
//!    a dedicated-cluster run.
//! 2. **A proptest sweep over the scheduling engine** — arbitrary job
//!    streams (simultaneous arrivals, zero-service jobs, empty streams
//!    included) re-checked against the analytic models, with no tuning
//!    runs in the loop, so hundreds of cases stay cheap.

use pipetune::{
    simulate_fifo, simulate_processor_sharing, ExperimentEnv, PipeTune, SharedJob, TunerOptions,
    TuningOutcome, WorkloadSpec,
};
use pipetune_cluster::PoissonArrivals;
use pipetune_service::{
    job_seed, AdmissionControl, JobSubmission, PolicyEngine, SchedulingPolicy, ServiceConfig,
    ServiceOutcome, TuningService,
};
use proptest::prelude::*;

const JOBS: usize = 4;
const ARRIVAL_RATE: f64 = 1.0 / 1500.0;
const ARRIVAL_SEED: u64 = 9;

/// The shared submission stream: Poisson arrivals (micro-aligned, like any
/// real trace through `SimTime`), one workload family so the ground truth
/// amortises and runs stay fast.
fn submissions() -> Vec<JobSubmission> {
    let mut arrivals = PoissonArrivals::new(ARRIVAL_RATE, ARRIVAL_SEED);
    (0..JOBS)
        .map(|_| JobSubmission::new(arrivals.next_arrival().as_secs_f64(), WorkloadSpec::lenet_mnist()))
        .collect()
}

fn run_policy(policy: SchedulingPolicy) -> ServiceOutcome {
    let env = ExperimentEnv::distributed(77).with_workers(2);
    let service = TuningService::new(ServiceConfig::default().with_policy(policy));
    service.run(&env, &submissions(), &TunerOptions::fast()).expect("service run succeeds")
}

fn assert_job_outcomes_identical(a: &TuningOutcome, b: &TuningOutcome) {
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits());
    assert_eq!(a.best_hp, b.best_hp);
    assert_eq!(a.best_system, b.best_system);
    assert_eq!(a.best_trial_id, b.best_trial_id);
    assert_eq!(a.tuning_secs.to_bits(), b.tuning_secs.to_bits());
    assert_eq!(a.tuning_energy_j.to_bits(), b.tuning_energy_j.to_bits());
    assert_eq!(a.epochs_total, b.epochs_total);
}

#[test]
fn real_service_reproduces_analytic_models_and_conserves_work() {
    let fifo = run_policy(SchedulingPolicy::Fifo);
    let ps = run_policy(SchedulingPolicy::ProcessorSharing);
    let srs = run_policy(SchedulingPolicy::ShortestRemainingService);

    // A job's tuning outcome must not depend on how the cluster was
    // scheduled around it: same sub-seed, same slot slice, same result.
    for (a, b) in fifo.jobs.iter().zip(&ps.jobs).chain(fifo.jobs.iter().zip(&srs.jobs)) {
        assert_eq!(a.service_secs.to_bits(), b.service_secs.to_bits());
        assert_job_outcomes_identical(
            a.outcome.as_ref().unwrap(),
            b.outcome.as_ref().unwrap(),
        );
    }

    // Analytic cross-check: the service's FIFO and PS completions must
    // match the closed-form simulations within 1e-9 seconds.
    let stream: Vec<SharedJob> = fifo
        .jobs
        .iter()
        .map(|r| SharedJob { arrival_secs: r.arrival_secs, service_secs: r.service_secs })
        .collect();
    let analytic_fifo = simulate_fifo(&stream, fifo.servers).unwrap();
    for c in &analytic_fifo {
        let rec = &fifo.jobs[c.job];
        assert!(
            (rec.completion_secs - c.completion_secs).abs() < 1e-9,
            "FIFO job {}: service {} vs analytic {}",
            c.job,
            rec.completion_secs,
            c.completion_secs
        );
        assert!((rec.response_secs - c.response_secs).abs() < 1e-9);
    }
    let analytic_ps = simulate_processor_sharing(&stream).unwrap();
    for c in &analytic_ps {
        let rec = &ps.jobs[c.job];
        assert!(
            (rec.completion_secs - c.completion_secs).abs() < 1e-9,
            "PS job {}: service {} vs analytic {}",
            c.job,
            rec.completion_secs,
            c.completion_secs
        );
    }

    // Work conservation: all three policies finish the same work at the
    // same instant.
    assert!((fifo.makespan_secs - ps.makespan_secs).abs() < 1e-9);
    assert!((fifo.makespan_secs - srs.makespan_secs).abs() < 1e-9);

    // FIFO completion order is arrival order (single server).
    let mut by_completion: Vec<&_> = fifo.jobs.iter().collect();
    by_completion.sort_by(|a, b| a.completion_secs.total_cmp(&b.completion_secs));
    let completion_order: Vec<usize> = by_completion.iter().map(|r| r.job).collect();
    let mut arrival_order: Vec<usize> = (0..fifo.jobs.len()).collect();
    arrival_order.sort_by(|&a, &b| {
        fifo.jobs[a].arrival_secs.total_cmp(&fifo.jobs[b].arrival_secs).then(a.cmp(&b))
    });
    assert_eq!(completion_order, arrival_order, "FIFO must complete in arrival order");

    // No slot-pool oversubscription at any event time, under any policy —
    // and whenever work is in service the pool is fully busy (the slot
    // side of work conservation).
    for outcome in [&fifo, &ps, &srs] {
        assert!(!outcome.timeline.is_empty());
        for sample in &outcome.timeline {
            assert!(
                sample.slots_in_use <= outcome.slot_capacity,
                "{:?}: {} slots leased with capacity {}",
                outcome.policy,
                sample.slots_in_use,
                outcome.slot_capacity
            );
            assert!(sample.in_service_jobs <= sample.active_jobs);
            if sample.in_service_jobs > 0 {
                assert_eq!(
                    sample.slots_in_use,
                    outcome.slot_capacity.min(sample.in_service_jobs * outcome.slots_per_job),
                    "{:?} leaves leased slots unaccounted",
                    outcome.policy
                );
            } else {
                assert_eq!(sample.slots_in_use, 0);
            }
        }
        let report = &outcome.fault_report;
        assert!(report.is_clean(), "no fault plan was installed: {report:?}");
    }
}

#[test]
fn single_job_stream_degenerates_to_a_dedicated_run() {
    let env = ExperimentEnv::distributed(31).with_workers(2);
    let sub = JobSubmission::new(5.0, WorkloadSpec::lenet_mnist());
    let service = TuningService::new(ServiceConfig::default());
    let outcome = service.run(&env, &[sub], &TunerOptions::fast()).unwrap();
    assert_eq!(outcome.jobs.len(), 1);
    let rec = &outcome.jobs[0];

    // A dedicated-cluster run with the same derived seed and the full
    // slot pool must agree byte for byte.
    let dedicated_env = env
        .clone()
        .with_seed(job_seed(&env, 0))
        .with_parallel_slots(outcome.slots_per_job);
    let dedicated =
        PipeTune::new(TunerOptions::fast()).run(&dedicated_env, &WorkloadSpec::lenet_mnist()).unwrap();
    let job = rec.outcome.as_ref().expect("admitted job has an outcome");
    assert_job_outcomes_identical(job, &dedicated);
    assert_eq!(outcome.slots_per_job, env.parallel_slots, "lone job gets the whole pool");

    // And the queueing picture is trivial: starts on arrival, no queueing,
    // response = dedicated tuning time.
    assert_eq!(rec.start_secs.to_bits(), rec.arrival_secs.to_bits());
    assert_eq!(rec.queue_secs, 0.0);
    assert_eq!(rec.response_secs.to_bits(), dedicated.tuning_secs.to_bits());
    assert_eq!(rec.completion_secs.to_bits(), (5.0 + dedicated.tuning_secs).to_bits());
    assert_eq!(outcome.makespan_secs.to_bits(), rec.completion_secs.to_bits());
    assert_eq!(outcome.mean_response_secs.to_bits(), rec.response_secs.to_bits());
}

#[test]
fn admission_control_rejects_overflow_and_rejected_jobs_never_run() {
    let env = ExperimentEnv::distributed(13).with_workers(2);
    // Two arrivals one (simulated) second apart; tuning runs last orders
    // of magnitude longer, so the second arrival always finds the single
    // admission slot occupied.
    let subs = [
        JobSubmission::new(0.0, WorkloadSpec::lenet_mnist()),
        JobSubmission::new(1.0, WorkloadSpec::lenet_mnist()),
    ];
    let service = TuningService::new(
        ServiceConfig::default().with_admission(AdmissionControl::bounded(1)),
    );
    let outcome = service.run(&env, &subs, &TunerOptions::fast()).unwrap();
    assert!(outcome.jobs[0].admitted);
    let rejected = &outcome.jobs[1];
    assert!(!rejected.admitted);
    assert!(rejected.outcome.is_none(), "rejected jobs must not run");
    assert_eq!(rejected.slots, 0);
    for t in [
        rejected.service_secs,
        rejected.start_secs,
        rejected.completion_secs,
        rejected.response_secs,
        rejected.queue_secs,
    ] {
        assert!(t.is_nan(), "rejected job times must be NaN: {rejected:?}");
    }
    // The admitted job is unaffected by the rejected visitor.
    assert_eq!(
        outcome.makespan_secs.to_bits(),
        outcome.jobs[0].completion_secs.to_bits()
    );
    assert_eq!(outcome.mean_response_secs.to_bits(), outcome.jobs[0].response_secs.to_bits());
}

// ---- proptest sweep over the scheduling engine (no tuning runs) ----

/// Arbitrary job streams: micro-aligned arrivals (every real trace goes
/// through `SimTime`), services with deliberate mass at zero, and lengths
/// from empty up.
fn job_streams() -> impl Strategy<Value = Vec<SharedJob>> {
    proptest::collection::vec((0u64..200_000_000, 0u64..5_000_000_000), 0..24).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(arrival_micros, service_micros)| SharedJob {
                arrival_secs: arrival_micros as f64 / 1e6,
                // Every fifth draw collapses to a zero-service job, the
                // edge case that used to wedge the analytic models.
                service_secs: if service_micros % 5 == 0 { 0.0 } else { service_micros as f64 / 1e6 },
            })
            .collect()
    })
}

/// Drives a stream through the engine the way the service driver does.
fn run_engine(policy: SchedulingPolicy, servers: usize, jobs: &[SharedJob]) -> Vec<(usize, f64, f64)> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a].arrival_secs.total_cmp(&jobs[b].arrival_secs).then(a.cmp(&b))
    });
    let mut engine = PolicyEngine::new(policy, servers);
    let mut done = Vec::new();
    for id in order {
        done.extend(engine.advance_to(jobs[id].arrival_secs));
        engine.insert(id, jobs[id].service_secs);
        // No oversubscription at the engine level either: FIFO and
        // shortest-remaining never serve more jobs than servers.
        let (served, rate) = engine.in_service();
        match policy {
            SchedulingPolicy::ProcessorSharing => assert!(rate <= 1.0),
            _ => assert!(served.len() <= servers),
        }
    }
    done.extend(engine.drain());
    done.into_iter().map(|c| (c.job, c.at_secs, c.start_secs)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn fifo_engine_matches_the_analytic_queue(jobs in job_streams(), servers in 1usize..4) {
        let engine = run_engine(SchedulingPolicy::Fifo, servers, &jobs);
        let analytic = simulate_fifo(&jobs, servers).unwrap();
        prop_assert_eq!(engine.len(), analytic.len());
        for (job, at, _) in &engine {
            let a = analytic.iter().find(|a| a.job == *job).unwrap();
            prop_assert!(
                (at - a.completion_secs).abs() < 1e-9,
                "job {} engine {} vs analytic {}", job, at, a.completion_secs
            );
        }
    }

    #[test]
    fn ps_engine_matches_the_analytic_fluid_model(jobs in job_streams()) {
        let engine = run_engine(SchedulingPolicy::ProcessorSharing, 1, &jobs);
        let analytic = simulate_processor_sharing(&jobs).unwrap();
        prop_assert_eq!(engine.len(), analytic.len());
        for (job, at, _) in &engine {
            let a = analytic.iter().find(|a| a.job == *job).unwrap();
            prop_assert!(
                (at - a.completion_secs).abs() < 1e-9,
                "job {} engine {} vs analytic {}", job, at, a.completion_secs
            );
        }
    }

    #[test]
    fn every_policy_conserves_work_and_respects_causality(jobs in job_streams()) {
        let mut makespans = Vec::new();
        for policy in SchedulingPolicy::ALL {
            let done = run_engine(policy, 1, &jobs);
            prop_assert_eq!(done.len(), jobs.len(), "every job completes under {:?}", policy);
            for (job, at, start) in &done {
                let j = &jobs[*job];
                prop_assert!(*start >= j.arrival_secs - 1e-9, "started before arrival");
                prop_assert!(*at >= *start - 1e-9, "completed before starting");
                prop_assert!(
                    *at >= j.arrival_secs + j.service_secs - 1e-9,
                    "job {} finished impossibly fast under {:?}", job, policy
                );
            }
            makespans.push(done.iter().map(|(_, at, _)| *at).fold(0.0, f64::max));
        }
        for m in &makespans[1..] {
            prop_assert!(
                (m - makespans[0]).abs() < 1e-9,
                "work conservation violated: {:?}", makespans
            );
        }
    }

    #[test]
    fn fifo_single_server_completes_in_arrival_order(jobs in job_streams()) {
        let done = run_engine(SchedulingPolicy::Fifo, 1, &jobs);
        let mut arrival_order: Vec<usize> = (0..jobs.len()).collect();
        arrival_order.sort_by(|&a, &b| {
            jobs[a].arrival_secs.total_cmp(&jobs[b].arrival_secs).then(a.cmp(&b))
        });
        let completion_order: Vec<usize> = done.iter().map(|(job, _, _)| *job).collect();
        prop_assert_eq!(completion_order, arrival_order);
    }
}
