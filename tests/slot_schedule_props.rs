//! Property tests for [`SlotSchedule::assign`], the greedy list scheduler
//! that maps a batch of trial durations onto simulated parallel slots. The
//! parallel executor's wall-clock accounting rests on these invariants.

use pipetune::SlotSchedule;
use proptest::prelude::*;

fn durations() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..1000.0f64, 0..40)
}

/// Negative durations are clamped to zero by `assign`; mirror that here so
/// the bounds below are stated on what actually gets scheduled.
fn clamped(durations: &[f64]) -> Vec<f64> {
    durations.iter().map(|d| d.max(0.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn makespan_is_at_least_the_longest_item(ds in durations(), slots in 1usize..9) {
        let (_, makespan) = SlotSchedule::assign(&ds, slots);
        let longest = clamped(&ds).into_iter().fold(0.0, f64::max);
        prop_assert!(makespan >= longest, "makespan {makespan} < longest item {longest}");
    }

    #[test]
    fn makespan_never_exceeds_serial_time(ds in durations(), slots in 1usize..9) {
        let (_, makespan) = SlotSchedule::assign(&ds, slots);
        let serial: f64 = clamped(&ds).iter().sum();
        // Tolerance: per-slot partial sums round differently than one long sum.
        prop_assert!(makespan <= serial * (1.0 + 1e-12) + 1e-9,
            "makespan {makespan} > serial {serial}");
    }

    #[test]
    fn completions_are_consistent(ds in durations(), slots in 1usize..9) {
        let (completions, makespan) = SlotSchedule::assign(&ds, slots);
        prop_assert_eq!(completions.len(), ds.len());
        let cl = clamped(&ds);
        for (i, (&c, &d)) in completions.iter().zip(&cl).enumerate() {
            // An item cannot finish before its own duration has elapsed...
            prop_assert!(c >= d, "item {i} finished at {c} < its duration {d}");
            // ...nor after the round is over.
            prop_assert!(c <= makespan, "item {i} finished at {c} > makespan {makespan}");
        }
        // The makespan is the last completion (or zero for an empty round).
        let last = completions.iter().copied().fold(0.0, f64::max);
        prop_assert_eq!(makespan.to_bits(), last.to_bits());
    }

    #[test]
    fn single_slot_serialises_in_arrival_order(ds in durations()) {
        let (completions, _) = SlotSchedule::assign(&ds, 1);
        // One slot: completions are the running prefix sums — in particular
        // non-decreasing, the per-slot FIFO invariant.
        let mut prefix = 0.0f64;
        for (i, (&c, d)) in completions.iter().zip(clamped(&ds)).enumerate() {
            prefix += d;
            prop_assert_eq!(c.to_bits(), prefix.to_bits(), "item {} not FIFO", i);
        }
    }

    #[test]
    fn zero_slots_clamp_to_one(ds in durations()) {
        let (c0, m0) = SlotSchedule::assign(&ds, 0);
        let (c1, m1) = SlotSchedule::assign(&ds, 1);
        prop_assert_eq!(c0, c1);
        prop_assert_eq!(m0.to_bits(), m1.to_bits());
    }

    #[test]
    fn more_slots_never_hurt(ds in durations(), slots in 1usize..8) {
        let (_, narrow) = SlotSchedule::assign(&ds, slots);
        let (_, wide) = SlotSchedule::assign(&ds, slots + 1);
        prop_assert!(wide <= narrow, "adding a slot raised makespan {narrow} -> {wide}");
    }
}
