//! The multi-job tuning service inherits the executor's determinism
//! contract: for a fixed arrival seed and policy, the full
//! [`ServiceOutcome`] — every job's `TuningOutcome`, the merged fault
//! report, the queueing timeline — and the exported telemetry trace are
//! **byte-identical** for every worker count, clean and under
//! `FaultPlan::mixed`, across multiple arrival seeds.

use pipetune::{ExperimentEnv, TunerOptions, TuningOutcome, WorkloadSpec};
use pipetune_cluster::{FaultPlan, FaultReport, PoissonArrivals};
use pipetune_service::{JobSubmission, SchedulingPolicy, ServiceConfig, ServiceOutcome, TuningService};
use pipetune_telemetry::{SpanKind, TelemetryHandle, TelemetrySnapshot};

const JOBS: usize = 3;
const WORKER_COUNTS: [usize; 3] = [1, 4, 64];

/// Two (arrival seed, policy) scenarios, so the byte-identity claim is
/// pinned for more than one arrival stream and more than one scheduler.
const SCENARIOS: [(u64, SchedulingPolicy); 2] = [
    (41, SchedulingPolicy::Fifo),
    (43, SchedulingPolicy::ProcessorSharing),
];

fn run_service(
    seed: u64,
    policy: SchedulingPolicy,
    workers: usize,
    plan: FaultPlan,
) -> (ServiceOutcome, TelemetrySnapshot) {
    let mut arrivals = PoissonArrivals::new(1.0 / 1500.0, seed);
    let submissions: Vec<JobSubmission> = (0..JOBS)
        .map(|_| JobSubmission::new(arrivals.next_arrival().as_secs_f64(), WorkloadSpec::lenet_mnist()))
        .collect();
    let telemetry = TelemetryHandle::enabled();
    let env = ExperimentEnv::distributed(seed)
        .with_workers(workers)
        .with_fault_plan(plan)
        .with_telemetry(telemetry.clone());
    let service = TuningService::new(ServiceConfig::default().with_policy(policy));
    let outcome = service.run(&env, &submissions, &TunerOptions::fast()).unwrap();
    (outcome, telemetry.snapshot().expect("enabled handle"))
}

fn assert_fault_reports_identical(a: &FaultReport, b: &FaultReport) {
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.stragglers, b.stragglers);
    assert_eq!(a.counter_faults, b.counter_faults);
    assert_eq!(a.preemptions, b.preemptions);
    assert_eq!(a.retried, b.retried);
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.abandoned, b.abandoned);
    assert_eq!(a.wasted_epoch_secs.to_bits(), b.wasted_epoch_secs.to_bits());
    assert_eq!(a.recovery_overhead_secs.to_bits(), b.recovery_overhead_secs.to_bits());
}

fn assert_job_outcomes_identical(a: &TuningOutcome, b: &TuningOutcome) {
    assert_eq!(a.workload, b.workload);
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits());
    assert_eq!(a.best_hp, b.best_hp);
    assert_eq!(a.best_system, b.best_system);
    assert_eq!(a.best_trial_id, b.best_trial_id);
    assert_eq!(a.training_secs.to_bits(), b.training_secs.to_bits());
    assert_eq!(a.tuning_secs.to_bits(), b.tuning_secs.to_bits());
    assert_eq!(a.tuning_energy_j.to_bits(), b.tuning_energy_j.to_bits());
    assert_eq!(a.epochs_total, b.epochs_total);
    assert_eq!(a.gt_stats, b.gt_stats);
    assert_fault_reports_identical(&a.fault_report, &b.fault_report);
    assert_eq!(a.convergence.len(), b.convergence.len());
    for (x, y) in a.convergence.iter().zip(&b.convergence) {
        assert_eq!(x.wall_secs.to_bits(), y.wall_secs.to_bits());
        assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits());
    }
}

fn assert_service_outcomes_identical(a: &ServiceOutcome, b: &ServiceOutcome) {
    assert_eq!(a.policy, b.policy);
    assert_eq!(a.servers, b.servers);
    assert_eq!(a.slot_capacity, b.slot_capacity);
    assert_eq!(a.slots_per_job, b.slots_per_job);
    assert_eq!(a.makespan_secs.to_bits(), b.makespan_secs.to_bits());
    assert_eq!(a.mean_response_secs.to_bits(), b.mean_response_secs.to_bits());
    assert_fault_reports_identical(&a.fault_report, &b.fault_report);

    assert_eq!(a.jobs.len(), b.jobs.len());
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.job, y.job);
        assert_eq!(x.workload, y.workload);
        assert_eq!(x.admitted, y.admitted);
        assert_eq!(x.status, y.status);
        assert_eq!(x.attempts, y.attempts);
        assert_eq!(x.slots, y.slots);
        assert_eq!(x.arrival_secs.to_bits(), y.arrival_secs.to_bits());
        assert_eq!(x.service_secs.to_bits(), y.service_secs.to_bits());
        assert_eq!(x.start_secs.to_bits(), y.start_secs.to_bits());
        assert_eq!(x.completion_secs.to_bits(), y.completion_secs.to_bits());
        assert_eq!(x.response_secs.to_bits(), y.response_secs.to_bits());
        assert_eq!(x.queue_secs.to_bits(), y.queue_secs.to_bits());
        assert_eq!(x.drained_secs.to_bits(), y.drained_secs.to_bits());
        assert_eq!(x.lost_service_secs.to_bits(), y.lost_service_secs.to_bits());
        assert_eq!(x.backoff_secs.to_bits(), y.backoff_secs.to_bits());
        assert_eq!(x.outcome.is_some(), y.outcome.is_some());
        if let (Some(ox), Some(oy)) = (&x.outcome, &y.outcome) {
            assert_job_outcomes_identical(ox, oy);
        }
    }

    assert_eq!(a.timeline.len(), b.timeline.len());
    for (x, y) in a.timeline.iter().zip(&b.timeline) {
        assert_eq!(x.at_secs.to_bits(), y.at_secs.to_bits());
        assert_eq!(x.active_jobs, y.active_jobs);
        assert_eq!(x.in_service_jobs, y.in_service_jobs);
        assert_eq!(x.slots_in_use, y.slots_in_use);
        assert_eq!(x.capacity, y.capacity);
    }

    let (sa, sb) = (&a.service_fault_report, &b.service_fault_report);
    assert_eq!(sa.node_leaves, sb.node_leaves);
    assert_eq!(sa.node_joins, sb.node_joins);
    assert_eq!(sa.repartitions, sb.repartitions);
    assert_eq!(sa.job_crashes, sb.job_crashes);
    assert_eq!(sa.resubmissions, sb.resubmissions);
    assert_eq!(sa.jobs_shed, sb.jobs_shed);
    assert_eq!(sa.jobs_abandoned, sb.jobs_abandoned);
    assert_eq!(sa.lost_service_secs.to_bits(), sb.lost_service_secs.to_bits());
    assert_eq!(sa.backoff_secs.to_bits(), sb.backoff_secs.to_bits());
}

fn assert_identical_across_worker_counts(plan: FaultPlan) {
    for (seed, policy) in SCENARIOS {
        let (base, base_snap) = run_service(seed, policy, WORKER_COUNTS[0], plan.clone());
        let base_trace = base_snap.to_json_string();
        let base_metrics = base_snap.metrics_json_string();
        base_snap.validate().expect("service traces are well-formed");
        for workers in &WORKER_COUNTS[1..] {
            let (outcome, snap) = run_service(seed, policy, *workers, plan.clone());
            assert_service_outcomes_identical(&base, &outcome);
            assert_eq!(
                snap.to_json_string(),
                base_trace,
                "seed {seed} {policy:?}: trace JSON differs between workers=1 and workers={workers}"
            );
            assert_eq!(
                snap.metrics_json_string(),
                base_metrics,
                "seed {seed} {policy:?}: metrics JSON differs between workers=1 and workers={workers}"
            );
        }
    }
}

#[test]
fn service_outcomes_and_traces_identical_across_worker_counts() {
    assert_identical_across_worker_counts(FaultPlan::none());
}

#[test]
fn service_outcomes_and_traces_identical_across_worker_counts_under_faults() {
    assert_identical_across_worker_counts(FaultPlan::mixed(7));
}

#[test]
fn faulty_service_runs_actually_fault_and_merge_job_reports() {
    let (outcome, _) = run_service(41, SchedulingPolicy::Fifo, 4, FaultPlan::mixed(7));
    assert!(
        outcome.fault_report.injected > 0,
        "FaultPlan::mixed must actually fire: {:?}",
        outcome.fault_report
    );
    // The service-level report is exactly the merge of the per-job ones.
    let mut merged = FaultReport::default();
    for rec in &outcome.jobs {
        merged.merge(&rec.outcome.as_ref().unwrap().fault_report);
    }
    assert_fault_reports_identical(&merged, &outcome.fault_report);
}

#[test]
fn service_traces_follow_the_service_job_run_taxonomy() {
    let (outcome, snap) = run_service(43, SchedulingPolicy::Fifo, 2, FaultPlan::none());

    // One service root, one job span per submission, one nested tuning
    // run per admitted job.
    let roots: Vec<_> = snap.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1);
    assert_eq!(roots[0].kind, SpanKind::Service);
    let jobs: Vec<_> = snap.spans.iter().filter(|s| s.kind == SpanKind::Job).collect();
    assert_eq!(jobs.len(), outcome.jobs.len());
    let runs = snap.spans.iter().filter(|s| s.kind == SpanKind::TuningRun).count();
    assert_eq!(runs, outcome.jobs.iter().filter(|r| r.admitted).count());
    for (i, span) in snap.spans.iter().enumerate() {
        match span.kind {
            SpanKind::Service => assert!(span.parent.is_none()),
            SpanKind::Job => {
                let p = span.parent.expect("job spans nest under the service") as usize;
                assert_eq!(snap.spans[p].kind, SpanKind::Service, "span {i} mis-parented");
            }
            SpanKind::TuningRun => {
                let p = span.parent.expect("service runs nest under a job") as usize;
                assert_eq!(snap.spans[p].kind, SpanKind::Job, "span {i} mis-parented");
            }
            _ => {}
        }
    }

    // Job spans live on the service arrival clock: each opens at its
    // job's arrival and closes at its completion.
    for (rec, span) in outcome.jobs.iter().zip(&jobs) {
        assert_eq!(span.start_secs.to_bits(), rec.arrival_secs.to_bits());
        assert_eq!(span.end_secs.to_bits(), rec.completion_secs.to_bits());
    }
    assert_eq!(roots[0].end_secs.to_bits(), outcome.makespan_secs.to_bits());
}
