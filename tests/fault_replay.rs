//! Fault injection must live *inside* the determinism contract: every fault
//! decision and every recovery action is a pure function of
//! `(env seed, trial id, fault plan)`, so a faulty run replays byte for byte
//! across worker counts exactly like a fault-free one. These tests pin that
//! down for PipeTune and both baselines, over two different fault plans,
//! comparing accuracies, clocks, trajectories and the fault report as bits.

use pipetune::{
    ConvergencePoint, ExperimentEnv, FaultPlan, FaultReport, PipeTune, TuneV1, TuneV2,
    TunerOptions, TuningOutcome, WorkloadSpec,
};

/// The two schedules under test: every fault class at moderate rates, and a
/// straggler-heavy plan (epoch slowdowns plus slot stragglers).
fn plans() -> Vec<FaultPlan> {
    vec![FaultPlan::mixed(7), FaultPlan::stragglers(11, 0.35)]
}

fn assert_trajectories_identical(a: &[ConvergencePoint], b: &[ConvergencePoint]) {
    assert_eq!(a.len(), b.len(), "different number of trial completions");
    for (i, (pa, pb)) in a.iter().zip(b).enumerate() {
        assert_eq!(pa.wall_secs.to_bits(), pb.wall_secs.to_bits(), "wall_secs differs at {i}");
        assert_eq!(pa.accuracy.to_bits(), pb.accuracy.to_bits(), "accuracy differs at {i}");
        assert_eq!(pa.trial_secs.to_bits(), pb.trial_secs.to_bits(), "trial_secs differs at {i}");
    }
}

fn assert_fault_reports_identical(a: &FaultReport, b: &FaultReport) {
    assert_eq!(a.injected, b.injected);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.stragglers, b.stragglers);
    assert_eq!(a.counter_faults, b.counter_faults);
    assert_eq!(a.preemptions, b.preemptions);
    assert_eq!(a.retried, b.retried);
    assert_eq!(a.recovered, b.recovered);
    assert_eq!(a.abandoned, b.abandoned);
    assert_eq!(a.wasted_epoch_secs.to_bits(), b.wasted_epoch_secs.to_bits());
    assert_eq!(a.recovery_overhead_secs.to_bits(), b.recovery_overhead_secs.to_bits());
}

fn assert_outcomes_identical(a: &TuningOutcome, b: &TuningOutcome) {
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits());
    assert_eq!(a.best_hp, b.best_hp);
    assert_eq!(a.best_system, b.best_system);
    assert_eq!(a.best_trial_id, b.best_trial_id);
    assert_eq!(a.tuning_secs.to_bits(), b.tuning_secs.to_bits());
    assert_eq!(a.tuning_energy_j.to_bits(), b.tuning_energy_j.to_bits());
    assert_eq!(a.training_secs.to_bits(), b.training_secs.to_bits());
    assert_eq!(a.epochs_total, b.epochs_total);
    assert_eq!(a.gt_stats, b.gt_stats);
    assert_trajectories_identical(&a.convergence, &b.convergence);
    assert_fault_reports_identical(&a.fault_report, &b.fault_report);
}

#[test]
fn pipetune_fault_runs_replay_across_worker_counts() {
    for plan in plans() {
        let run = |workers: usize| {
            let env =
                ExperimentEnv::distributed(51).with_fault_plan(plan.clone()).with_workers(workers);
            let mut tuner = PipeTune::new(TunerOptions::fast());
            // Two jobs so the cross-job ground-truth path is exercised
            // under faults too.
            vec![
                tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap(),
                tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap(),
            ]
        };
        let sequential = run(1);
        let four = run(4);
        let many = run(64);
        for (s, p) in sequential.iter().zip(&four) {
            assert_outcomes_identical(s, p);
        }
        for (s, p) in sequential.iter().zip(&many) {
            assert_outcomes_identical(s, p);
        }
        // The plan must actually have fired, or replay equality is vacuous.
        assert!(
            sequential.iter().any(|o| o.fault_report.injected > 0),
            "plan {plan:?} injected nothing"
        );
    }
}

#[test]
fn baseline_fault_runs_replay_across_worker_counts() {
    for plan in plans() {
        let env_for = |workers: usize| {
            ExperimentEnv::distributed(52).with_fault_plan(plan.clone()).with_workers(workers)
        };
        let v1_seq =
            TuneV1::new(TunerOptions::fast()).run(&env_for(1), &WorkloadSpec::lenet_mnist()).unwrap();
        let v1_par =
            TuneV1::new(TunerOptions::fast()).run(&env_for(64), &WorkloadSpec::lenet_mnist()).unwrap();
        assert_outcomes_identical(&v1_seq, &v1_par);
        let v2_seq =
            TuneV2::new(TunerOptions::fast()).run(&env_for(1), &WorkloadSpec::lenet_mnist()).unwrap();
        let v2_par =
            TuneV2::new(TunerOptions::fast()).run(&env_for(64), &WorkloadSpec::lenet_mnist()).unwrap();
        assert_outcomes_identical(&v2_seq, &v2_par);
        assert!(
            v1_seq.fault_report.injected > 0 && v2_seq.fault_report.injected > 0,
            "plan {plan:?} injected nothing"
        );
    }
}

#[test]
fn empty_plan_report_is_clean_and_mixed_plan_report_is_not() {
    let clean = PipeTune::new(TunerOptions::fast())
        .run(&ExperimentEnv::distributed(53), &WorkloadSpec::lenet_mnist())
        .unwrap();
    assert!(clean.fault_report.is_clean(), "empty plan must leave a clean report");
    let faulty = PipeTune::new(TunerOptions::fast())
        .run(
            &ExperimentEnv::distributed(53).with_fault_plan(FaultPlan::mixed(9)),
            &WorkloadSpec::lenet_mnist(),
        )
        .unwrap();
    assert!(!faulty.fault_report.is_clean());
    assert!(faulty.fault_report.injected >= faulty.fault_report.recovered);
}
