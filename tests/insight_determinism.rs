//! The insight layer's determinism contract (see `docs/insight.md`):
//!
//! 1. critical-path reports and trace diffs are **byte-identical** for
//!    every executor worker count, clean and under fault injection —
//!    they are pure functions of traces that are themselves
//!    byte-identical;
//! 2. traces round-trip through JSON (`to_json_string` →
//!    `from_json_str` → `to_json_string`) without changing the report;
//! 3. malformed traces are rejected by validation before any analysis;
//! 4. the regression gate fails exactly when a gated headline metric
//!    degrades beyond tolerance.

use pipetune::{ExperimentEnv, PipeTune, TunerOptions, WorkloadSpec};
use pipetune_cluster::FaultPlan;
use pipetune_insight::{
    check, headline_metrics, BenchReport, GateConfig, TraceDiff, TraceReport, Verdict,
};
use pipetune_telemetry::{TelemetryHandle, TelemetrySnapshot};

/// Runs two PipeTune jobs (the second exercises ground-truth reuse) under
/// a live telemetry handle and returns the snapshot.
fn run_traced(workers: usize, plan: FaultPlan) -> TelemetrySnapshot {
    let telemetry = TelemetryHandle::enabled();
    let env = ExperimentEnv::distributed(41)
        .with_workers(workers)
        .with_fault_plan(plan)
        .with_telemetry(telemetry.clone());
    let mut tuner = PipeTune::new(TunerOptions::fast());
    tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
    tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
    telemetry.snapshot().expect("enabled handle")
}

fn assert_analysis_byte_identical(plan: FaultPlan) {
    let base_snap = run_traced(1, plan.clone());
    let base_report = TraceReport::from_snapshot(&base_snap).unwrap().render();
    for workers in [4usize, 64] {
        let snap = run_traced(workers, plan.clone());
        let report = TraceReport::from_snapshot(&snap).unwrap().render();
        assert_eq!(
            report, base_report,
            "critical-path report differs between workers=1 and workers={workers}"
        );
        let diff = TraceDiff::between(&base_snap, &snap).unwrap();
        assert!(diff.identical, "traces differ between workers=1 and workers={workers}");
        assert_eq!(
            diff.render(),
            TraceDiff::between(&base_snap, &base_snap).unwrap().render(),
            "diff rendering differs between workers=1 and workers={workers}"
        );
    }
}

#[test]
fn reports_and_diffs_byte_identical_across_worker_counts() {
    assert_analysis_byte_identical(FaultPlan::none());
}

#[test]
fn reports_and_diffs_byte_identical_across_worker_counts_under_faults() {
    assert_analysis_byte_identical(FaultPlan::mixed(7));
}

#[test]
fn real_traces_survive_the_json_round_trip_and_report_identically() {
    let snap = run_traced(4, FaultPlan::mixed(7));
    let text = snap.to_json_string();
    let parsed = TelemetrySnapshot::from_json_str(&text).expect("own exports re-import");
    assert_eq!(parsed.to_json_string(), text, "re-export must be byte-identical");

    // Analyses agree whether they saw the live snapshot or the re-import.
    let live = TraceReport::from_snapshot(&snap).unwrap().render();
    let reimported = TraceReport::from_json_str(&text).unwrap().render();
    assert_eq!(live, reimported);
}

#[test]
fn faulty_runs_attribute_retry_overhead() {
    let clean = TraceReport::from_snapshot(&run_traced(4, FaultPlan::none())).unwrap();
    let faulty = TraceReport::from_snapshot(&run_traced(4, FaultPlan::mixed(7))).unwrap();
    let overhead =
        |report: &TraceReport| -> f64 { report.runs.iter().map(|r| r.phases.retry_overhead_secs).sum() };
    assert_eq!(overhead(&clean), 0.0, "clean runs have no retry overhead");
    assert!(overhead(&faulty) > 0.0, "crash recovery must surface as retry overhead");
}

#[test]
fn validation_rejects_malformed_real_traces() {
    let snap = run_traced(1, FaultPlan::none());
    assert!(snap.validate().is_ok(), "real traces validate clean");

    // Orphaned parent reference.
    let mut broken = snap.clone();
    let last = broken.spans.len() as u32;
    broken.spans[5].parent = Some(last + 7);
    assert!(broken.validate().is_err());
    assert!(TraceReport::from_snapshot(&broken).is_err(), "analysis refuses invalid traces");
    assert!(TraceDiff::between(&snap, &broken).is_err());

    // End before start.
    let mut reversed = snap.clone();
    reversed.spans[0].end_secs = reversed.spans[0].start_secs - 1.0;
    assert!(reversed.validate().is_err());
}

#[test]
fn gate_detects_an_injected_tuning_time_regression() {
    let config = GateConfig::headline_defaults();
    let snap = run_traced(1, FaultPlan::none());
    let metrics = headline_metrics("lenet_mnist", &snap, &snap, &snap);
    let baseline = BenchReport { label: "bench_headline".into(), metrics };
    assert!(
        check(&baseline, &baseline, &config).passed(),
        "a report always passes against itself"
    );

    // Degrade PipeTune tuning time by 20% — beyond the 5% tolerance.
    let mut regressed = baseline.clone();
    let key = "lenet_mnist.tuning_secs.pipetune";
    *regressed.metrics.get_mut(key).unwrap() *= 1.2;
    let outcome = check(&baseline, &regressed, &config);
    assert!(!outcome.passed(), "a 20% tuning-time degradation must fail the gate");
    assert!(outcome
        .checks
        .iter()
        .any(|c| c.metric == key && c.verdict == Verdict::Regressed));

    // The committed baseline schema round-trips byte-identically.
    let text = baseline.to_json_string();
    let back = BenchReport::from_json_str(&text).unwrap();
    assert_eq!(back.to_json_string(), text);
}
