//! The epoch-reuse cache's determinism contract, enforced byte for byte:
//!
//! * With the cache **on**, a tuning run — cold or warm — is a pure
//!   function of the environment seed: outcomes and telemetry traces are
//!   byte-identical for 1, 4 and 64 executor workers.
//! * With the cache **off** (the default), every result is bit-identical
//!   to a cache-less build: the handle is inert and no call site changes
//!   behaviour.
//! * A **warm** rerun over the cache a cold run filled reproduces the
//!   cold run's search verdicts exactly — same best trial, same
//!   accuracies — while finishing measurably faster.
//! * Persisted caches ([`EpochCacheHandle::save`]/[`load`]) resume
//!   exactly where the live cache left off.

use pipetune::{
    ConvergencePoint, EpochCacheConfig, EpochCacheHandle, ExperimentEnv, PipeTune, TuneV1,
    TunerOptions, TuningOutcome, WorkloadSpec,
};
use pipetune_telemetry::TelemetryHandle;

const SEED: u64 = 41;

fn assert_trajectories_identical(a: &[ConvergencePoint], b: &[ConvergencePoint]) {
    assert_eq!(a.len(), b.len(), "different number of trial completions");
    for (i, (pa, pb)) in a.iter().zip(b).enumerate() {
        assert_eq!(pa.wall_secs.to_bits(), pb.wall_secs.to_bits(), "wall_secs differs at {i}");
        assert_eq!(pa.accuracy.to_bits(), pb.accuracy.to_bits(), "accuracy differs at {i}");
        assert_eq!(pa.trial_secs.to_bits(), pb.trial_secs.to_bits(), "trial_secs differs at {i}");
    }
}

fn assert_outcomes_identical(a: &TuningOutcome, b: &TuningOutcome) {
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits());
    assert_eq!(a.best_hp, b.best_hp);
    assert_eq!(a.best_system, b.best_system);
    assert_eq!(a.best_trial_id, b.best_trial_id);
    assert_eq!(a.tuning_secs.to_bits(), b.tuning_secs.to_bits());
    assert_eq!(a.tuning_energy_j.to_bits(), b.tuning_energy_j.to_bits());
    assert_eq!(a.training_secs.to_bits(), b.training_secs.to_bits());
    assert_eq!(a.epochs_total, b.epochs_total);
    assert_eq!(a.gt_stats, b.gt_stats);
    assert_eq!(a.cache_stats, b.cache_stats);
    assert_trajectories_identical(&a.convergence, &b.convergence);
}

/// A cold run filling a fresh cache followed by a warm rerun over it,
/// under the given worker count and cache capacity.
fn cold_then_warm(workers: usize, capacity: usize) -> (TuningOutcome, TuningOutcome) {
    let cache = EpochCacheHandle::with_config(EpochCacheConfig {
        capacity,
        ..EpochCacheConfig::default()
    });
    let env = ExperimentEnv::distributed(SEED).with_workers(workers).with_epoch_cache(cache);
    let spec = WorkloadSpec::lenet_mnist();
    let cold = PipeTune::new(TunerOptions::fast()).run(&env, &spec).unwrap();
    let warm = PipeTune::new(TunerOptions::fast()).run(&env, &spec).unwrap();
    (cold, warm)
}

#[test]
fn cached_runs_replay_across_worker_counts() {
    let (cold_1, warm_1) = cold_then_warm(1, 64);
    for workers in [4, 64] {
        let (cold_n, warm_n) = cold_then_warm(workers, 64);
        assert_outcomes_identical(&cold_1, &cold_n);
        assert_outcomes_identical(&warm_1, &warm_n);
    }
    // The warm leg must actually exercise the cache, or the worker sweep
    // proves less than it claims.
    assert!(warm_1.cache_stats.hits > 0, "warm rerun should adopt cached prefixes");
}

#[test]
fn cached_traces_are_byte_identical_across_worker_counts() {
    let trace = |workers: usize| {
        let telemetry = TelemetryHandle::enabled();
        let cache = EpochCacheHandle::with_config(EpochCacheConfig::default());
        let env = ExperimentEnv::distributed(SEED)
            .with_workers(workers)
            .with_telemetry(telemetry.clone())
            .with_epoch_cache(cache);
        let spec = WorkloadSpec::lenet_mnist();
        PipeTune::new(TunerOptions::fast()).run(&env, &spec).unwrap();
        PipeTune::new(TunerOptions::fast()).run(&env, &spec).unwrap();
        telemetry.snapshot().unwrap().to_json_string()
    };
    let sequential = trace(1);
    assert!(sequential.contains("cache_lookup"), "trace should record cache lookups");
    for workers in [4, 64] {
        assert_eq!(sequential, trace(workers), "trace differs at {workers} workers");
    }
}

#[test]
fn disabled_cache_is_bit_identical_to_default_runs() {
    // `ExperimentEnv` defaults to a disabled handle; attaching an explicit
    // disabled handle must change nothing either. This pins the contract
    // that every cache call site is behind `is_enabled()`.
    let spec = WorkloadSpec::lenet_mnist();
    let base_env = ExperimentEnv::distributed(SEED);
    let base = PipeTune::new(TunerOptions::fast()).run(&base_env, &spec).unwrap();
    let explicit_env =
        ExperimentEnv::distributed(SEED).with_epoch_cache(EpochCacheHandle::disabled());
    let explicit = PipeTune::new(TunerOptions::fast()).run(&explicit_env, &spec).unwrap();
    assert_outcomes_identical(&base, &explicit);
    assert_eq!(base.cache_stats, Default::default(), "disabled runs never touch the cache");
}

#[test]
fn cold_cache_reproduces_disabled_results() {
    // The cache key is the trial's full identity (config prefix +
    // instantiation seed + RNG seed + tuner policy), and trial identities
    // are unique within a run, so an empty cache can only miss — and
    // misses must not perturb the search in any way.
    let spec = WorkloadSpec::lenet_mnist();
    let disabled_env = ExperimentEnv::distributed(SEED);
    let disabled = PipeTune::new(TunerOptions::fast()).run(&disabled_env, &spec).unwrap();
    let (cold, _) = cold_then_warm(1, 64);
    assert!(cold.cache_stats.misses > 0, "cold run should consult the cache");
    assert_eq!(cold.cache_stats.hits, 0, "trial identities are unique within a run");
    assert_eq!(cold.best_accuracy.to_bits(), disabled.best_accuracy.to_bits());
    assert_eq!(cold.best_hp, disabled.best_hp);
    assert_eq!(cold.best_trial_id, disabled.best_trial_id);
    assert_eq!(cold.tuning_secs.to_bits(), disabled.tuning_secs.to_bits());
    assert_eq!(cold.tuning_energy_j.to_bits(), disabled.tuning_energy_j.to_bits());
    assert_eq!(cold.epochs_total, disabled.epochs_total);
    assert_trajectories_identical(&cold.convergence, &disabled.convergence);
}

/// Asserts two outcomes are identical in everything except their cache
/// stats (used where one run consulted a cache and the other did not).
fn assert_verdicts_identical(a: &TuningOutcome, b: &TuningOutcome) {
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits());
    assert_eq!(a.best_hp, b.best_hp);
    assert_eq!(a.best_system, b.best_system);
    assert_eq!(a.best_trial_id, b.best_trial_id);
    assert_eq!(a.tuning_secs.to_bits(), b.tuning_secs.to_bits());
    assert_eq!(a.tuning_energy_j.to_bits(), b.tuning_energy_j.to_bits());
    assert_eq!(a.training_secs.to_bits(), b.training_secs.to_bits());
    assert_eq!(a.epochs_total, b.epochs_total);
    assert_trajectories_identical(&a.convergence, &b.convergence);
}

#[test]
fn foreign_seed_prefixes_are_never_adopted() {
    // Regression: the cache key folds in the workload instantiation seed
    // and the trial-RNG seed, so a job with a different master seed
    // sharing the same handle must never adopt the first job's prefixes —
    // a foreign-identity hit would splice another trial's trajectory into
    // this run and break the cache-off equivalence contract.
    let spec = WorkloadSpec::lenet_mnist();
    let cache = EpochCacheHandle::with_config(EpochCacheConfig::default());
    let env_a = ExperimentEnv::distributed(SEED).with_epoch_cache(cache.clone());
    let first = PipeTune::new(TunerOptions::fast()).run(&env_a, &spec).unwrap();
    assert!(first.cache_stats.inserts > 0, "the first job should populate the cache");

    let env_b = ExperimentEnv::distributed(SEED + 1).with_epoch_cache(cache);
    let shared = PipeTune::new(TunerOptions::fast()).run(&env_b, &spec).unwrap();
    let off_env = ExperimentEnv::distributed(SEED + 1);
    let off = PipeTune::new(TunerOptions::fast()).run(&off_env, &spec).unwrap();

    assert_eq!(shared.cache_stats.hits, 0, "cross-seed adoption is forbidden");
    assert!(shared.cache_stats.misses > 0, "lookups still happen against the shared store");
    assert_verdicts_identical(&shared, &off);
}

#[test]
fn foreign_tuner_policy_prefixes_are_never_adopted() {
    // Regression: TuneV1 derives its scheduler stream from the same
    // `subseed(0x7453)` basis as PipeTune, so with equal options and seed
    // it samples the *same* configurations under the *same* trial ids —
    // only the tuner policy differs (Fixed default vs Pipelined). Without
    // the tuner-policy discriminant in the cache key, the baseline would
    // adopt prefixes tuned under PipeTune's policy and its system
    // configs, time and energy accounting would be contaminated.
    let spec = WorkloadSpec::lenet_mnist();
    let cache = EpochCacheHandle::with_config(EpochCacheConfig::default());
    let env = ExperimentEnv::distributed(SEED).with_epoch_cache(cache);
    PipeTune::new(TunerOptions::fast()).run(&env, &spec).unwrap();

    let shared = TuneV1::new(TunerOptions::fast()).run(&env, &spec).unwrap();
    let off_env = ExperimentEnv::distributed(SEED);
    let off = TuneV1::new(TunerOptions::fast()).run(&off_env, &spec).unwrap();

    assert_eq!(shared.cache_stats.hits, 0, "cross-policy adoption is forbidden");
    assert!(shared.cache_stats.misses > 0, "the baseline still consults the shared store");
    assert_verdicts_identical(&shared, &off);
}

#[test]
fn warm_rerun_is_faster_and_reproduces_the_cold_verdict() {
    let (cold, warm) = cold_then_warm(4, 64);
    assert_eq!(warm.best_accuracy.to_bits(), cold.best_accuracy.to_bits());
    assert_eq!(warm.best_hp, cold.best_hp);
    assert_eq!(warm.best_trial_id, cold.best_trial_id);
    assert!(warm.cache_stats.hits > 0, "warm rerun should hit");
    assert!(warm.cache_stats.saved_secs > 0.0, "hits should save simulated time");
    assert!(
        warm.tuning_secs < cold.tuning_secs,
        "warm tuning ({}s) should beat cold ({}s)",
        warm.tuning_secs,
        cold.tuning_secs
    );
}

#[test]
fn bounded_capacity_evicts_deterministically() {
    // A deliberately tiny cache forces LRU eviction mid-run; the eviction
    // order — and therefore every downstream lookup — must not depend on
    // the worker count.
    let (cold_1, warm_1) = cold_then_warm(1, 2);
    let (cold_4, warm_4) = cold_then_warm(4, 2);
    assert_outcomes_identical(&cold_1, &cold_4);
    assert_outcomes_identical(&warm_1, &warm_4);
    assert!(
        cold_1.cache_stats.evictions + warm_1.cache_stats.evictions > 0,
        "a 2-entry cache should evict under a full tuning run"
    );
}

#[test]
fn persisted_caches_resume_exactly_where_live_ones_left_off() {
    let spec = WorkloadSpec::lenet_mnist();
    let live = EpochCacheHandle::with_config(EpochCacheConfig::default());
    let env = ExperimentEnv::distributed(SEED).with_epoch_cache(live.clone());
    let cold = PipeTune::new(TunerOptions::fast()).run(&env, &spec).unwrap();
    assert!(cold.cache_stats.inserts > 0);

    let path = std::env::temp_dir().join(format!("pipetune-cache-{}.json", std::process::id()));
    live.save(&path).unwrap();
    let restored = EpochCacheHandle::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);

    let warm_live = {
        let env = env.clone();
        PipeTune::new(TunerOptions::fast()).run(&env, &spec).unwrap()
    };
    let warm_restored = {
        let env = ExperimentEnv::distributed(SEED).with_epoch_cache(restored);
        PipeTune::new(TunerOptions::fast()).run(&env, &spec).unwrap()
    };
    assert_outcomes_identical(&warm_live, &warm_restored);
    assert!(warm_restored.cache_stats.hits > 0, "the restored cache should serve hits");
}
