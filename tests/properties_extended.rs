//! Second property-test suite: clustering density invariants, wire-format
//! round-trips, the processor-sharing fluid model, simulated time, arrivals
//! and the dropout/conv layers' stochastic contracts.

use pipetune::{simulate_processor_sharing, SharedJob};
use pipetune_cluster::{PoissonArrivals, SimTime};
use pipetune_clustering::{Dbscan, DbscanLabel};
use pipetune_tsdb::Point;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dbscan_core_points_are_never_noise(
        n_per_blob in 4usize..12,
        sep in 5.0..50.0f64,
    ) {
        let mut data = Vec::new();
        for i in 0..n_per_blob {
            let j = i as f64 * 0.1;
            data.push(vec![j, 0.0]);
            data.push(vec![sep + j, sep]);
        }
        let model = Dbscan::new(1.5, 3).fit(&data).unwrap();
        // Every point sits in a dense blob → no noise at all, two clusters.
        prop_assert_eq!(model.noise_count(), 0);
        prop_assert_eq!(model.num_clusters(), 2);
        // Predictions on training points match their labels.
        for (p, &l) in data.iter().zip(model.labels()) {
            let (pl, _) = model.predict(p);
            prop_assert_eq!(pl, l);
        }
    }

    #[test]
    fn dbscan_labels_are_dense_consecutive_ids(
        seed_jitter in 0.0..0.3f64,
    ) {
        let mut data = Vec::new();
        for b in 0..3 {
            for i in 0..5 {
                data.push(vec![b as f64 * 10.0 + i as f64 * seed_jitter.max(0.01), 0.0]);
            }
        }
        let model = Dbscan::new(1.0, 3).fit(&data).unwrap();
        let max_label = model
            .labels()
            .iter()
            .filter_map(DbscanLabel::cluster)
            .max()
            .unwrap_or(0);
        prop_assert_eq!(max_label + 1, model.num_clusters());
    }

    #[test]
    fn line_protocol_round_trips_arbitrary_points(
        measurement in "[a-zA-Z][a-zA-Z0-9 ,=_-]{0,16}",
        tag_val in "[a-zA-Z0-9 ,=/_-]{0,12}",
        value in -1e12..1e12f64,
        ts in 0u64..u64::MAX / 2,
    ) {
        let p = Point::new(measurement.clone(), ts)
            .tag("k", tag_val.clone())
            .field("v", value);
        let line = p.to_line_protocol();
        let back = Point::from_line_protocol(&line).unwrap();
        prop_assert_eq!(back.measurement(), measurement.as_str());
        prop_assert_eq!(back.tag_value("k"), Some(tag_val.as_str()));
        prop_assert_eq!(back.timestamp_us(), ts);
        let v = back.field_value("v").unwrap();
        prop_assert!((v - value).abs() <= value.abs() * 1e-12 + 1e-12);
    }

    #[test]
    fn processor_sharing_preserves_work_and_ordering(
        arrivals in proptest::collection::vec(0.0..1000.0f64, 1..12),
        services in proptest::collection::vec(1.0..500.0f64, 12),
    ) {
        let jobs: Vec<SharedJob> = arrivals
            .iter()
            .zip(&services)
            .map(|(&a, &s)| SharedJob { arrival_secs: a, service_secs: s })
            .collect();
        let done = simulate_processor_sharing(&jobs).unwrap();
        prop_assert_eq!(done.len(), jobs.len());
        // Response at least the dedicated service time; completion ordering
        // is non-decreasing; total busy time conserved.
        let mut total_service = 0.0;
        for c in &done {
            prop_assert!(c.response_secs >= jobs[c.job].service_secs - 1e-6);
            total_service += jobs[c.job].service_secs;
        }
        prop_assert!(done.windows(2).all(|w| w[0].completion_secs <= w[1].completion_secs + 1e-9));
        let span_end = done.iter().map(|c| c.completion_secs).fold(0.0, f64::max);
        let first_arrival = arrivals.iter().copied().fold(f64::INFINITY, f64::min);
        prop_assert!(span_end >= first_arrival + total_service / jobs.len() as f64 - 1e-6);
        prop_assert!(span_end <= first_arrival + total_service + 1000.0 + 1e-6);
    }

    #[test]
    fn simtime_round_trip_is_microsecond_exact(
        secs in 0.0..1e7f64,
    ) {
        let t = SimTime::from_secs_f64(secs);
        prop_assert!((t.as_secs_f64() - secs).abs() < 1e-6);
    }

    #[test]
    fn simtime_plus_minus_are_inverse(
        a in 0u64..1_000_000_000,
        b in 0u64..1_000_000_000,
    ) {
        let ta = SimTime::from_micros(a);
        let tb = SimTime::from_micros(b);
        prop_assert_eq!(ta.plus(tb).minus(tb), ta);
    }

    #[test]
    fn poisson_arrivals_are_strictly_ordered_and_positive(
        rate in 0.001..10.0f64,
        seed in 0u64..500,
    ) {
        let mut p = PoissonArrivals::new(rate, seed);
        let times = p.take_arrivals(50);
        prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(times[0] > SimTime::ZERO);
    }

    #[test]
    fn dropout_keeps_expectation_for_any_rate(
        rate in 0.0..0.9f32,
        seed in 0u64..200,
    ) {
        use pipetune_dnn::Dropout;
        use pipetune_tensor::Tensor;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut drop = Dropout::new(rate).unwrap();
        let x = Tensor::ones(&[4000]);
        let y = drop.forward(&x, true, &mut rng);
        let mean = f64::from(y.mean());
        // The survivor mean's standard error grows like
        // sqrt(keep·scale² − 1)/sqrt(n); allow 5 sigma.
        let keep = f64::from(1.0 - rate);
        let sigma = ((1.0 / keep - 1.0).max(0.0) / 4000.0).sqrt();
        prop_assert!((mean - 1.0).abs() < 0.05 + 5.0 * sigma, "rate {rate}: mean {mean}");
    }

    #[test]
    fn conv2d_is_linear_in_the_input(
        seed in 0u64..200,
        alpha in -3.0..3.0f32,
    ) {
        use pipetune_tensor::{conv2d, Tensor};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let w = Tensor::randn(&[2, 1, 3, 3], 0.5, &mut rng);
        let zero_bias = Tensor::zeros(&[2]);
        let y1 = conv2d(&x.scale(alpha), &w, &zero_bias).unwrap();
        let y2 = conv2d(&x, &w, &zero_bias).unwrap().scale(alpha);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
