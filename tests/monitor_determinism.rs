//! The online monitor's determinism contract (see `docs/monitoring.md`):
//!
//! 1. the incident timeline is **byte-identical** for every executor
//!    worker count, clean or under the chaos fault schedule, because the
//!    engine consumes the telemetry stream in record order and that
//!    stream is itself worker-count-invariant;
//! 2. **live scans ≡ offline replay** — re-running the detector set over
//!    the exported trace (`pipetune-trace watch`) reproduces the live
//!    run's timeline byte for byte;
//! 3. an engine with **no detectors** (and an injected empty timeline)
//!    leaves every artefact bit-identical to a monitor-less build;
//! 4. a proptest sweep over detector window parameters pins the
//!    timeline's total order: alerts never reorder, whatever fires.

use pipetune::{ExperimentEnv, PipeTune, TunerOptions, WorkloadSpec};
use pipetune_cluster::{FaultPlan, PoissonArrivals, ServiceFaultPlan};
use pipetune_monitor::{
    CrashLoopConfig, IncidentTimeline, MonitorConfig, MonitorEngine, MonitorHandle, SloBurnConfig,
    StallConfig,
};
use pipetune_service::{JobSubmission, SchedulingPolicy, ServiceConfig, TuningService};
use pipetune_telemetry::{TelemetryHandle, TelemetrySnapshot};
use proptest::prelude::*;
use std::sync::OnceLock;

const SEED: u64 = 41;
const WORKER_COUNTS: [usize; 3] = [1, 4, 64];
const JOBS: usize = 3;
/// Chaos streams need enough contention that the deadline actually
/// sheds a job (the SLO burn signal); 3-job streams all finish in time.
const CHAOS_JOBS: usize = 6;
/// Near the clean streams' p95 response: most jobs finish, the tail is
/// shed — so the SLO burn detector has something to see.
const DEADLINE_SECS: f64 = 20_000.0;

fn submissions(jobs: usize) -> Vec<JobSubmission> {
    let mut arrivals = PoissonArrivals::new(1.0 / 1500.0, SEED);
    (0..jobs)
        .map(|_| {
            JobSubmission::new(arrivals.next_arrival().as_secs_f64(), WorkloadSpec::lenet_mnist())
        })
        .collect()
}

/// Runs one service stream under a live monitor and returns the timeline
/// plus the exported trace.
fn run_service(
    workers: usize,
    chaos: bool,
    config: &MonitorConfig,
) -> (IncidentTimeline, TelemetrySnapshot) {
    let telemetry = TelemetryHandle::enabled();
    let monitor = MonitorHandle::with_config(config);
    let mut service_config = ServiceConfig::default().with_policy(SchedulingPolicy::ALL[0]);
    if chaos {
        service_config = service_config
            .with_service_faults(ServiceFaultPlan::mixed(SEED))
            .with_deadline(DEADLINE_SECS);
    }
    let env = ExperimentEnv::distributed(SEED)
        .with_workers(workers)
        .with_telemetry(telemetry.clone())
        .with_monitor(monitor.clone());
    let jobs = if chaos { CHAOS_JOBS } else { JOBS };
    TuningService::new(service_config)
        .run(&env, &submissions(jobs), &TunerOptions::fast())
        .expect("service runs");
    let timeline = monitor.finish(&telemetry).expect("live monitor");
    (timeline, telemetry.snapshot().expect("enabled handle"))
}

#[test]
fn timelines_byte_identical_across_worker_counts() {
    for chaos in [false, true] {
        let (base, _) = run_service(WORKER_COUNTS[0], chaos, &MonitorConfig::standard());
        let base_json = base.to_json_string();
        for &workers in &WORKER_COUNTS[1..] {
            let (timeline, _) = run_service(workers, chaos, &MonitorConfig::standard());
            assert_eq!(
                timeline.to_json_string(),
                base_json,
                "timeline differs between workers={} and workers={workers} (chaos={chaos})",
                WORKER_COUNTS[0]
            );
        }
        if chaos {
            // The gated acceptance artefact: a chaos stream must produce a
            // non-empty timeline with the deadline burn visible.
            assert!(!base.is_empty(), "chaos stream produced no incidents");
            assert!(base.count_for("slo_burn") >= 1, "shed job should burn the SLO budget");
            assert!(base.count_for("stall") >= 1, "recovery reruns should trip the watchdog");
        }
    }
}

#[test]
fn tuner_runs_monitor_identically_across_worker_counts() {
    // The runner-loop scan path (no service layer): a faulty standalone
    // tuning run with the watchdog live.
    let run = |workers: usize| {
        let telemetry = TelemetryHandle::enabled();
        let monitor = MonitorHandle::with_config(&MonitorConfig::standard());
        let env = ExperimentEnv::distributed(SEED)
            .with_workers(workers)
            .with_fault_plan(FaultPlan::mixed(7))
            .with_telemetry(telemetry.clone())
            .with_monitor(monitor.clone());
        PipeTune::new(TunerOptions::fast())
            .run(&env, &WorkloadSpec::lenet_mnist())
            .expect("tuner runs");
        monitor.finish(&telemetry).expect("live monitor").to_json_string()
    };
    let base = run(WORKER_COUNTS[0]);
    for &workers in &WORKER_COUNTS[1..] {
        assert_eq!(run(workers), base, "tuner timeline differs at workers={workers}");
    }
}

#[test]
fn offline_replay_equals_live_scans() {
    let (live, snap) = run_service(4, true, &MonitorConfig::standard());

    // Round-trip the trace through its JSON export — exactly what
    // `pipetune-trace watch` consumes — then replay the detectors.
    let parsed = TelemetrySnapshot::from_json_str(&snap.to_json_string()).expect("own export");
    let mut engine = MonitorEngine::new(&MonitorConfig::standard());
    engine.observe_snapshot(&parsed);
    let replayed = engine.finish(&parsed.metrics);

    assert_eq!(replayed, live);
    assert_eq!(replayed.to_json_string(), live.to_json_string());
}

#[test]
fn empty_detector_set_is_bit_identical_to_a_monitorless_run() {
    let (timeline, with_monitor) = run_service(4, true, &MonitorConfig::none());
    assert!(timeline.is_empty(), "no detectors, no alerts");

    // The same stream with the monitor disabled entirely.
    let telemetry = TelemetryHandle::enabled();
    let env = ExperimentEnv::distributed(SEED)
        .with_workers(4)
        .with_telemetry(telemetry.clone());
    let config = ServiceConfig::default()
        .with_policy(SchedulingPolicy::ALL[0])
        .with_service_faults(ServiceFaultPlan::mixed(SEED))
        .with_deadline(DEADLINE_SECS);
    TuningService::new(config)
        .run(&env, &submissions(CHAOS_JOBS), &TunerOptions::fast())
        .expect("service runs");
    let without_monitor = telemetry.snapshot().expect("enabled handle");

    assert_eq!(with_monitor.to_json_string(), without_monitor.to_json_string());
    assert_eq!(with_monitor.metrics_json_string(), without_monitor.metrics_json_string());

    // Injecting the empty timeline is a strict no-op on the trace too.
    let mut injected = without_monitor;
    let before = injected.to_json_string();
    timeline.inject_into(&mut injected);
    assert_eq!(injected.to_json_string(), before);
    assert_eq!(injected.metrics_json_string(), with_monitor.metrics_json_string());
}

/// One chaos trace, computed once, shared by every proptest case.
fn chaos_snapshot() -> &'static TelemetrySnapshot {
    static SNAP: OnceLock<TelemetrySnapshot> = OnceLock::new();
    SNAP.get_or_init(|| run_service(2, true, &MonitorConfig::none()).1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the window parameters, the timeline comes out in its
    /// canonical total order: re-sorting it is the identity, and every
    /// alert carries a finite timestamp.
    #[test]
    fn alerts_never_reorder(
        window in 2usize..48,
        factor in 1.25f64..4.0,
        min_samples in 2usize..12,
        burst in 1usize..5,
        crash_window in 1_000.0f64..50_000.0,
        fast in 1_000.0f64..20_000.0,
        slow_mult in 2.0f64..8.0,
        budget in 0.01f64..0.5,
    ) {
        let config = MonitorConfig {
            stall: Some(StallConfig { window, factor, min_samples }),
            crash_loop: Some(CrashLoopConfig { window_secs: crash_window, burst }),
            slo_burn: Some(SloBurnConfig {
                slow_window_secs: fast * slow_mult,
                fast_window_secs: fast,
                budget,
                burn_threshold: 1.0,
            }),
            ..MonitorConfig::none()
        };
        let snap = chaos_snapshot();
        let mut engine = MonitorEngine::new(&config);
        engine.observe_snapshot(snap);
        let timeline = engine.finish(&snap.metrics);

        prop_assert!(timeline.alerts.iter().all(|a| a.at_secs.is_finite()));
        let resorted = IncidentTimeline::from_alerts(timeline.alerts.clone());
        prop_assert_eq!(&resorted, &timeline, "timeline not in canonical order");
        // And replay is deterministic: a second engine reproduces it.
        let mut again = MonitorEngine::new(&config);
        again.observe_snapshot(snap);
        prop_assert_eq!(again.finish(&snap.metrics), timeline);
    }
}
