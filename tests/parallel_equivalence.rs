//! The executor's determinism contract: a tuning run is a pure function of
//! the environment seed — the real worker-thread count only changes how fast
//! the answer arrives, never the answer.
//!
//! This holds by construction (per-trial RNGs keyed on trial id, batch-start
//! ground-truth snapshots with an ordered flush, request-order merges), and
//! these tests enforce it byte for byte: accuracies compared as bits,
//! convergence trajectories compared point by point.

use pipetune::{
    ConvergencePoint, ExperimentEnv, PipeTune, TuneV2, TunerOptions, TuningOutcome, WorkloadSpec,
};

fn run_with_workers(workers: usize) -> Vec<TuningOutcome> {
    let env = ExperimentEnv::distributed(41).with_workers(workers);
    let mut tuner = PipeTune::new(TunerOptions::fast());
    // Two jobs: the second one exercises the cross-job ground-truth path
    // (hits against history recorded by the first).
    vec![
        tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap(),
        tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap(),
    ]
}

fn assert_trajectories_identical(a: &[ConvergencePoint], b: &[ConvergencePoint]) {
    assert_eq!(a.len(), b.len(), "different number of trial completions");
    for (i, (pa, pb)) in a.iter().zip(b).enumerate() {
        assert_eq!(pa.wall_secs.to_bits(), pb.wall_secs.to_bits(), "wall_secs differs at {i}");
        assert_eq!(pa.accuracy.to_bits(), pb.accuracy.to_bits(), "accuracy differs at {i}");
        assert_eq!(pa.trial_secs.to_bits(), pb.trial_secs.to_bits(), "trial_secs differs at {i}");
    }
}

fn assert_outcomes_identical(a: &TuningOutcome, b: &TuningOutcome) {
    assert_eq!(a.best_accuracy.to_bits(), b.best_accuracy.to_bits());
    assert_eq!(a.best_hp, b.best_hp);
    assert_eq!(a.best_system, b.best_system);
    assert_eq!(a.best_trial_id, b.best_trial_id);
    assert_eq!(a.tuning_secs.to_bits(), b.tuning_secs.to_bits());
    assert_eq!(a.tuning_energy_j.to_bits(), b.tuning_energy_j.to_bits());
    assert_eq!(a.training_secs.to_bits(), b.training_secs.to_bits());
    assert_eq!(a.epochs_total, b.epochs_total);
    assert_eq!(a.gt_stats, b.gt_stats);
    assert_trajectories_identical(&a.convergence, &b.convergence);
}

#[test]
fn pipetune_parallel_replays_sequential_exactly() {
    let sequential = run_with_workers(1);
    let parallel = run_with_workers(4);
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_outcomes_identical(s, p);
    }
    // The second job must actually have exercised ground-truth reuse, or
    // this test proves less than it claims.
    assert!(sequential[0].gt_stats.recorded > 0, "first job should probe and record");
    assert!(sequential[1].gt_stats.hits > 0, "second job should hit the ground truth");
}

#[test]
fn worker_count_is_not_part_of_the_seed() {
    // Odd worker counts, including more workers than trials.
    let a = run_with_workers(3);
    let b = run_with_workers(64);
    for (x, y) in a.iter().zip(&b) {
        assert_outcomes_identical(x, y);
    }
}

#[test]
fn baselines_replay_across_worker_counts_too() {
    let run = |workers: usize| {
        let env = ExperimentEnv::distributed(17).with_workers(workers);
        TuneV2::new(TunerOptions::fast()).run(&env, &WorkloadSpec::lenet_mnist()).unwrap()
    };
    let s = run(1);
    let p = run(4);
    assert_outcomes_identical(&s, &p);
}
