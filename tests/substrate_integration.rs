//! Integration tests across the substrate crates: datasets feed models,
//! models feed the profiler, profiles feed the clustering — the whole chain
//! under the middleware's feet.

use pipetune::{EpochWorkload, ExperimentEnv, HyperParams, WorkloadSpec};
use pipetune_clustering::KMeans;
use pipetune_data::{mnist_like, ImageSpec};
use pipetune_dnn::{LeNet5, Model, TrainConfig};
use pipetune_energy::{PduTrace, PowerModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn real_training_improves_heldout_accuracy_through_the_stack() {
    // data → dnn, full fidelity (no middleware shortcuts).
    let spec = ImageSpec { train: 200, test: 64, ..ImageSpec::default() };
    let (train, test) = mnist_like(&spec, 77).expect("datasets generate");
    let mut rng = StdRng::seed_from_u64(77);
    let mut model = LeNet5::with_input_size(16, 10, 0.1, &mut rng).expect("model builds");
    let before = model.evaluate(&test).expect("eval");
    let cfg = TrainConfig { batch_size: 32, learning_rate: 0.02, ..TrainConfig::default() };
    for _ in 0..8 {
        model.train_epoch(&train, &cfg, &mut rng).expect("epoch");
    }
    let after = model.evaluate(&test).expect("eval");
    assert!(after > before + 0.2, "training must actually learn: {before} → {after}");
}

#[test]
fn profiles_of_the_seven_workloads_cluster_by_family() {
    // workload → signature → perfmon → clustering: the Fig. 8 chain, at the
    // granularity of all seven workloads with k = 3 (one per job type).
    let env = ExperimentEnv::distributed(1100);
    let mut rng = StdRng::seed_from_u64(1100);
    let hp = HyperParams::default();
    let mut features = Vec::new();
    let mut types = Vec::new();
    for spec in WorkloadSpec::all_type12().into_iter().chain(WorkloadSpec::all_type3()) {
        let w = spec.with_scale(0.2).instantiate(&hp, 9).expect("instantiates");
        let dur = env.cost.epoch_duration(&w.work_units(), &env.default_system, 1.0);
        for _ in 0..3 {
            let p = env.profiler.profile_epoch(
                &w.signature(),
                env.default_system.cores,
                dur,
                &mut rng,
            );
            features.push(p.features());
            types.push(spec.job_type());
        }
    }
    let model = KMeans::new(3).fit(&features, 5).expect("fits");
    // Each repetition of a workload must land in one cluster (profiles are
    // repeatable), and Type-I and Type-II must not share a cluster.
    for chunk in model.labels().chunks(3) {
        assert!(chunk.windows(2).all(|w| w[0] == w[1]), "repetitions split: {chunk:?}");
    }
    let label_of = |t: pipetune::JobType| -> Vec<usize> {
        model
            .labels()
            .iter()
            .zip(&types)
            .filter(|(_, ty)| **ty == t)
            .map(|(&l, _)| l)
            .collect()
    };
    let t1 = label_of(pipetune::JobType::TypeI);
    let t2 = label_of(pipetune::JobType::TypeII);
    assert!(!t1.is_empty() && !t2.is_empty());
    assert!(
        t1.iter().all(|l| !t2.contains(l)),
        "Type-I {t1:?} and Type-II {t2:?} must separate"
    );
}

#[test]
fn energy_accounting_matches_pdu_integration() {
    // cluster cost model → power model → PDU trapezoid: the energy path.
    let env = ExperimentEnv::distributed(1101);
    let hp = HyperParams { batch_size: 256, ..HyperParams::default() };
    let w = WorkloadSpec::lenet_mnist().with_scale(0.2).instantiate(&hp, 3).expect("builds");
    let dur = env.cost.epoch_duration(&w.work_units(), &env.default_system, 1.0);
    let watts = env.trial_power_watts(env.default_system.cores);
    let mut pdu = PduTrace::new();
    pdu.record_interval(0.0, dur, watts);
    let integrated = pdu.energy_joules();
    let direct = watts.round() * dur;
    let rel = (integrated - direct).abs() / direct;
    assert!(rel < 0.01, "trapezoid {integrated} vs direct {direct}");
}

#[test]
fn power_model_is_consistent_with_cluster_attribution() {
    let env = ExperimentEnv::distributed(1102);
    let pm = PowerModel::default();
    // The trial's cluster power is the idle floor of all nodes plus the
    // dynamic draw of its own cores.
    let p4 = env.trial_power_watts(4);
    let p16 = env.trial_power_watts(16);
    let idle_floor = pm.idle_watts * env.cluster.nodes.len() as f64;
    assert!(p4 > idle_floor);
    assert!((p16 - p4) - (pm.power_watts(16, 1.0) - pm.power_watts(4, 1.0)).abs() < 1e-9);
}

#[test]
fn allocator_contention_feeds_the_cost_model() {
    // cluster topology → allocator → contention → cost model: the Fig. 5
    // co-location path. Three 8-core jobs on one 8-core node triple the
    // contention factor, which triples an epoch's busy time.
    use pipetune_cluster::{Allocator, ClusterSpec, CostModel, Node, SystemConfig, WorkUnits};
    let mut alloc =
        Allocator::new(ClusterSpec { nodes: vec![Node { cores: 8, memory_gb: 64 }] });
    let request = SystemConfig::new(8, 16);
    let g1 = alloc.allocate(request).expect("fits");
    let node = g1.node;
    let model = CostModel::default();
    let work = WorkUnits {
        flops: 6e11,
        iterations: 200,
        working_set_bytes: 3e9,
        memory_intensity: 0.5,
    };
    let alone = model.epoch_duration(&work, &request, alloc.contention(node));
    alloc.allocate(request).expect("oversubscribes");
    alloc.allocate(request).expect("oversubscribes");
    let crowded = model.epoch_duration(&work, &request, alloc.contention(node));
    let busy_alone = alone - model.init_secs;
    let busy_crowded = crowded - model.init_secs;
    assert!(
        (busy_crowded / busy_alone - 3.0).abs() < 1e-9,
        "3x oversubscription must triple busy time: {busy_alone} vs {busy_crowded}"
    );
    // Releasing the co-tenants restores full speed.
    alloc.release(g1.id).expect("release");
    assert!(alloc.contention(node) >= 1.0);
}

#[test]
fn workload_instances_are_reproducible_across_instantiations() {
    let hp = HyperParams { batch_size: 64, learning_rate: 0.02, ..HyperParams::default() };
    for spec in [WorkloadSpec::lenet_mnist(), WorkloadSpec::lstm_news20(), WorkloadSpec::bfs()] {
        let mut a = spec.with_scale(0.2).instantiate(&hp, 123).expect("a");
        let mut b = spec.with_scale(0.2).instantiate(&hp, 123).expect("b");
        let oa = a.run_epoch().expect("a epoch");
        let ob = b.run_epoch().expect("b epoch");
        assert_eq!(oa, ob, "{} must be reproducible", spec.name());
        assert_eq!(a.accuracy().expect("a"), b.accuracy().expect("b"));
    }
}
