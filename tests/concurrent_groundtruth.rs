//! Stress: many trials consulting one warm ground truth concurrently.
//!
//! Eight trials (two workload families) profile and look up against the same
//! [`SharedGroundTruth`] from eight OS threads. Whatever the interleaving,
//! the accounting must balance — every trial's lookup lands as exactly one
//! hit or one miss — and the flushed history must be independent of thread
//! completion order. Run both under the default parallel test harness and
//! under `--test-threads=1`; neither may change the outcome.

use pipetune::{
    ExperimentEnv, GroundTruth, HyperParams, ProbeGoal, SharedGroundTruth, SystemTuner,
    TrialExecution, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: usize = 8;

fn hp(batch: usize) -> HyperParams {
    HyperParams { batch_size: batch, learning_rate: 0.02, epochs: 20, ..HyperParams::default() }
}

fn spec_for(i: u64) -> WorkloadSpec {
    if i.is_multiple_of(2) { WorkloadSpec::lenet_mnist() } else { WorkloadSpec::lstm_news20() }
}

/// Probes six jobs sequentially so the ground truth holds a fitted model
/// with three records per workload family.
fn warm_ground_truth(env: &ExperimentEnv) -> GroundTruth {
    let mut gt = GroundTruth::paper_default(1);
    let mut rng = StdRng::seed_from_u64(3);
    let probes = (env.system_space.cores.len() + env.system_space.memory_gb.len() - 1) as u32;
    for seed in 0..6 {
        let w = spec_for(seed).with_scale(0.2).instantiate(&hp(256), seed).unwrap();
        let mut t = TrialExecution::new(w, SystemTuner::pipelined(ProbeGoal::Runtime));
        t.run_epochs(env, 1 + probes, Some(&mut gt), 1.0, &mut rng).unwrap();
    }
    gt
}

/// Runs `TRIALS` trials, each on its own thread against `shared`, and
/// flushes their sessions in trial-index order. Returns each trial's phase
/// log (true = ran any probe epoch).
fn stress_once(env: &ExperimentEnv, shared: &SharedGroundTruth<'_>) -> Vec<bool> {
    let epochs = 2; // profile + one epoch under the decision
    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TRIALS as u64)
            .map(|i| {
                scope.spawn(move || {
                    let w = spec_for(i).with_scale(0.2).instantiate(&hp(256), 100 + i).unwrap();
                    let mut t =
                        TrialExecution::new(w, SystemTuner::pipelined(ProbeGoal::Runtime));
                    let mut rng = StdRng::seed_from_u64(7_000 + i);
                    let mut session = shared.session();
                    t.run_epochs(env, epochs, Some(&mut session), 1.0, &mut rng).unwrap();
                    let probed = t
                        .records()
                        .iter()
                        .any(|r| r.phase == pipetune::EpochPhase::Probe);
                    (session, probed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut probed_flags = Vec::with_capacity(TRIALS);
    let mut sessions = Vec::with_capacity(TRIALS);
    for (session, probed) in results {
        sessions.push(session);
        probed_flags.push(probed);
    }
    shared.flush(sessions).unwrap();
    probed_flags
}

#[test]
fn eight_concurrent_trials_balance_their_lookup_accounting() {
    let env = ExperimentEnv::distributed(5);
    let mut gt = warm_ground_truth(&env);
    let stats_before = gt.stats();

    let shared = SharedGroundTruth::new(&mut gt);
    let probed = stress_once(&env, &shared);
    let stats_after = shared.stats();

    // Every trial profiled exactly once against the shared history, so the
    // new hits and misses must sum to the trial count — no lost updates, no
    // double counting, whatever the interleaving.
    let hits = stats_after.hits - stats_before.hits;
    let misses = stats_after.misses - stats_before.misses;
    assert_eq!(hits + misses, TRIALS, "hits {hits} + misses {misses} != {TRIALS}");

    // The warm history covers both families, so at least one trial reused.
    assert!(hits >= 1, "warm ground truth should produce hits: {stats_after:?}");

    // A hit skips probing; a miss probes. The flags must agree with stats.
    let probing_trials = probed.iter().filter(|&&p| p).count();
    assert_eq!(probing_trials, misses, "probe count must equal miss count");
}

#[test]
fn concurrent_stress_is_deterministic_and_batch_snapshotted() {
    let env = ExperimentEnv::distributed(5);

    // Two independent repetitions of the whole warm-up + stress sequence
    // must agree exactly: lookups see the batch-start snapshot (never a
    // co-running trial's flush), and the ordered flush makes the final
    // history a pure function of the inputs.
    let run = || {
        let mut gt = warm_ground_truth(&env);
        let shared = SharedGroundTruth::new(&mut gt);
        let probed = stress_once(&env, &shared);
        let stats = shared.stats();
        let history = shared.with_read(GroundTruth::feature_history);
        (probed, stats, history)
    };
    let (probed_a, stats_a, history_a) = run();
    let (probed_b, stats_b, history_b) = run();
    assert_eq!(probed_a, probed_b);
    assert_eq!(stats_a, stats_b);
    assert_eq!(history_a.len(), history_b.len());
    for (fa, fb) in history_a.iter().zip(&history_b) {
        let bits_a: Vec<u64> = fa.iter().map(|v| v.to_bits()).collect();
        let bits_b: Vec<u64> = fb.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "flushed feature vectors must replay");
    }
}
