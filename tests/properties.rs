//! Property-based tests (proptest) on the core invariants the reproduction
//! rests on: cost-model monotonicity, scheduler accounting, clustering
//! invariants, storage algebra and tensor algebra.

use pipetune::SlotSchedule;
use pipetune_cluster::{CostModel, SystemConfig, WorkUnits};
use pipetune_clustering::KMeans;
use pipetune_search::{HyperBand, ParamSpec, SearchSpace, TrialReport, TrialScheduler};
use pipetune_tensor::Tensor;
use pipetune_tsdb::{Aggregate, Database, Point, Query};
use proptest::prelude::*;

fn work_strategy() -> impl Strategy<Value = WorkUnits> {
    (1e9..1e13f64, 1u64..5000, 1e8..5e10f64, 0.0..4.0f64).prop_map(
        |(flops, iterations, ws, mi)| WorkUnits {
            flops,
            iterations,
            working_set_bytes: ws,
            memory_intensity: mi,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cost_model_durations_are_positive_and_finite(
        work in work_strategy(),
        cores in 1u32..64,
        mem in 1u32..128,
        contention in 1.0..8.0f64,
    ) {
        let d = CostModel::default().epoch_duration(
            &work,
            &SystemConfig::new(cores, mem),
            contention,
        );
        prop_assert!(d.is_finite() && d > 0.0);
    }

    #[test]
    fn more_memory_never_slows_an_epoch(
        work in work_strategy(),
        cores in 1u32..32,
        mem in 1u32..64,
    ) {
        let m = CostModel::default();
        let tight = m.epoch_duration(&work, &SystemConfig::new(cores, mem), 1.0);
        let roomy = m.epoch_duration(&work, &SystemConfig::new(cores, mem * 2), 1.0);
        prop_assert!(roomy <= tight + 1e-9);
    }

    #[test]
    fn contention_monotonically_increases_duration(
        work in work_strategy(),
        c1 in 1.0..4.0f64,
        extra in 0.1..4.0f64,
    ) {
        let m = CostModel::default();
        let sys = SystemConfig::default();
        prop_assert!(m.epoch_duration(&work, &sys, c1 + extra) >= m.epoch_duration(&work, &sys, c1));
    }

    #[test]
    fn slot_schedule_conserves_work(
        durations in proptest::collection::vec(0.0..100.0f64, 0..40),
        slots in 1usize..8,
    ) {
        let (completions, makespan) = SlotSchedule::assign(&durations, slots);
        prop_assert_eq!(completions.len(), durations.len());
        let total: f64 = durations.iter().sum();
        // Makespan bounds: at least total/slots, at most total (+eps).
        prop_assert!(makespan <= total + 1e-9);
        prop_assert!(makespan >= total / slots as f64 - 1e-9);
        for c in &completions {
            prop_assert!(*c <= makespan + 1e-9);
        }
    }

    #[test]
    fn kmeans_labels_point_to_nearest_centroid(
        seed in 0u64..1000,
        spread in 0.01..0.5f64,
    ) {
        // Two seeded blobs.
        let mut data = Vec::new();
        for i in 0..12 {
            let j = f64::from(i) * spread / 12.0;
            data.push(vec![0.0 + j, j]);
            data.push(vec![8.0 - j, 8.0 + j]);
        }
        let model = KMeans::new(2).fit(&data, seed).unwrap();
        for (p, &l) in data.iter().zip(model.labels()) {
            let (nearest, _) = model.predict(p);
            prop_assert_eq!(nearest, l);
        }
        // Inertia is the sum of member distances — non-negative and finite.
        prop_assert!(model.inertia().is_finite() && model.inertia() >= 0.0);
    }

    #[test]
    fn hyperband_issues_each_trial_at_most_r_max_epochs(
        r_max in 1u32..28,
        seed in 0u64..500,
    ) {
        let space = SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)]);
        let mut hb = HyperBand::new(space, r_max, 3, seed);
        let mut per_trial: std::collections::HashMap<u64, u64> = Default::default();
        let mut guard = 0;
        while !hb.is_finished() {
            for r in hb.next_trials() {
                *per_trial.entry(r.id.0).or_default() += u64::from(r.epochs);
                hb.report(TrialReport {
                    id: r.id,
                    score: r.config["x"].as_f64(),
                    epochs_run: r.epochs,
                });
            }
            guard += 1;
            prop_assert!(guard < 10_000, "non-terminating");
        }
        for (&id, &epochs) in &per_trial {
            prop_assert!(
                epochs <= u64::from(r_max) + 1,
                "trial {} ran {} epochs > R {}",
                id,
                epochs,
                r_max
            );
        }
        let issued: u64 = per_trial.values().sum();
        prop_assert_eq!(issued, hb.epochs_issued());
    }

    #[test]
    fn asha_budgets_and_accounting_hold(
        r_max in 1u32..28,
        max_trials in 1usize..20,
        seed in 0u64..300,
    ) {
        use pipetune_search::Asha;
        let space = SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)]);
        let mut asha = Asha::new(space, r_max, 3, max_trials, seed);
        let mut per_trial: std::collections::HashMap<u64, u64> = Default::default();
        let mut guard = 0;
        while !asha.is_finished() {
            for r in asha.next_trials() {
                *per_trial.entry(r.id.0).or_default() += u64::from(r.epochs);
                asha.report(TrialReport {
                    id: r.id,
                    score: r.config["x"].as_f64(),
                    epochs_run: r.epochs,
                });
            }
            guard += 1;
            prop_assert!(guard < 10_000, "non-terminating");
        }
        prop_assert_eq!(per_trial.len(), max_trials, "every sampled trial ran");
        for (&id, &epochs) in &per_trial {
            prop_assert!(epochs <= u64::from(r_max), "trial {} over budget: {}", id, epochs);
        }
        let issued: u64 = per_trial.values().sum();
        prop_assert_eq!(issued, asha.epochs_issued());
        prop_assert!(asha.best().is_some());
    }

    #[test]
    fn tsdb_count_aggregate_matches_query_length(
        n in 0usize..50,
        threshold in 0u64..50,
    ) {
        let db = Database::new();
        for i in 0..n as u64 {
            db.write(Point::new("m", i).field("x", i as f64)).unwrap();
        }
        let q = Query::measurement("m").from_us(threshold);
        let rows = db.query(&q).unwrap();
        let count = db.aggregate(&q, "x", Aggregate::Count).unwrap().unwrap_or(0.0);
        prop_assert_eq!(rows.len() as f64, count);
    }

    #[test]
    fn tensor_matmul_distributes_over_addition(
        seed in 0u64..200,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let b = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let c = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn tensor_transpose_preserves_matmul(
        seed in 0u64..200,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
        // (AB)^T = B^T A^T
        let ab_t = a.matmul(&b).unwrap().transpose().unwrap();
        let bt_at = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }
}
