//! The telemetry layer's determinism contract (see `docs/telemetry.md`):
//!
//! 1. exported traces and metrics are **byte-identical** for every executor
//!    worker count, with and without fault injection, because workers record
//!    into private buffers that the coordinator merges in scheduler request
//!    order;
//! 2. a disabled [`TelemetryHandle`] is not just cheap but *invisible*: the
//!    tuning outcome is bit-identical whether telemetry is off or on.

use pipetune::{observe, ExperimentEnv, PipeTune, TunerOptions, TuningOutcome, WorkloadSpec};
use pipetune_cluster::{observe as cluster_observe, FaultPlan};
use pipetune_telemetry::{EventKind, SpanKind, TelemetryHandle, TelemetrySnapshot};

/// Runs two PipeTune jobs (the second exercises ground-truth reuse) under a
/// live telemetry handle and returns the outcomes plus the snapshot.
fn run_traced(
    workers: usize,
    plan: FaultPlan,
) -> (Vec<TuningOutcome>, TelemetrySnapshot) {
    let telemetry = TelemetryHandle::enabled();
    let env = ExperimentEnv::distributed(41)
        .with_workers(workers)
        .with_fault_plan(plan)
        .with_telemetry(telemetry.clone());
    let mut tuner = PipeTune::new(TunerOptions::fast());
    let outcomes = vec![
        tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap(),
        tuner.run(&env, &WorkloadSpec::lenet_mnist()).unwrap(),
    ];
    (outcomes, telemetry.snapshot().expect("enabled handle"))
}

fn assert_traces_byte_identical(plan: FaultPlan) {
    let (_, base) = run_traced(1, plan.clone());
    let base_trace = base.to_json_string();
    let base_metrics = base.metrics_json_string();
    for workers in [4usize, 64] {
        let (_, snap) = run_traced(workers, plan.clone());
        assert_eq!(
            snap.to_json_string(),
            base_trace,
            "trace JSON differs between workers=1 and workers={workers}"
        );
        assert_eq!(
            snap.metrics_json_string(),
            base_metrics,
            "metrics JSON differs between workers=1 and workers={workers}"
        );
    }
}

#[test]
fn trace_bytes_identical_across_worker_counts() {
    assert_traces_byte_identical(FaultPlan::none());
}

#[test]
fn trace_bytes_identical_across_worker_counts_under_faults() {
    assert_traces_byte_identical(FaultPlan::mixed(7));
}

#[test]
fn disabled_handle_leaves_tuning_outcome_bit_identical() {
    let run = |telemetry: TelemetryHandle| {
        let env = ExperimentEnv::distributed(23).with_workers(2).with_telemetry(telemetry);
        PipeTune::new(TunerOptions::fast()).run(&env, &WorkloadSpec::lenet_mnist()).unwrap()
    };
    let off = run(TelemetryHandle::disabled());
    let on = run(TelemetryHandle::enabled());
    assert_eq!(off.best_accuracy.to_bits(), on.best_accuracy.to_bits());
    assert_eq!(off.best_hp, on.best_hp);
    assert_eq!(off.best_system, on.best_system);
    assert_eq!(off.best_trial_id, on.best_trial_id);
    assert_eq!(off.tuning_secs.to_bits(), on.tuning_secs.to_bits());
    assert_eq!(off.tuning_energy_j.to_bits(), on.tuning_energy_j.to_bits());
    assert_eq!(off.epochs_total, on.epochs_total);
    assert_eq!(off.gt_stats, on.gt_stats);
    assert_eq!(off.convergence.len(), on.convergence.len());
    for (a, b) in off.convergence.iter().zip(&on.convergence) {
        assert_eq!(a.wall_secs.to_bits(), b.wall_secs.to_bits());
        assert_eq!(a.accuracy.to_bits(), b.accuracy.to_bits());
    }
}

#[test]
fn trace_structure_matches_the_span_taxonomy() {
    let (outcomes, snap) = run_traced(4, FaultPlan::none());

    // Two jobs → two root `tuning_run` spans labelled by the tuner.
    let roots: Vec<_> = snap.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 2);
    assert!(roots.iter().all(|s| s.kind == SpanKind::TuningRun && s.label == "pipetune"));

    // Every non-root span points at an earlier span; the hierarchy is
    // tuning_run > rung > batch > trial > epoch.
    for (i, span) in snap.spans.iter().enumerate() {
        if let Some(p) = span.parent {
            assert!((p as usize) < i, "parent must be recorded before child");
            let parent = &snap.spans[p as usize];
            let expected_parent = match span.kind {
                SpanKind::Service | SpanKind::Job => {
                    unreachable!("standalone tuner runs emit no service-layer spans")
                }
                SpanKind::TuningRun => unreachable!("roots have no parent"),
                SpanKind::Rung => SpanKind::TuningRun,
                SpanKind::Batch => SpanKind::Rung,
                SpanKind::Trial => SpanKind::Batch,
                SpanKind::Epoch => SpanKind::Trial,
            };
            assert_eq!(parent.kind, expected_parent, "span {i} mis-parented");
        }
    }

    // Epoch spans == committed epochs == the epochs.total counter.
    let epoch_spans = snap.spans.iter().filter(|s| s.kind == SpanKind::Epoch).count() as u64;
    assert_eq!(epoch_spans, snap.metrics.counter(observe::EPOCHS_TOTAL));
    let by_phase = snap.metrics.counter(observe::EPOCHS_PROFILE)
        + snap.metrics.counter(observe::EPOCHS_PROBE)
        + snap.metrics.counter(observe::EPOCHS_TUNED)
        + snap.metrics.counter(observe::EPOCHS_FIXED);
    assert_eq!(by_phase, epoch_spans, "phase counters partition epochs.total");

    // Pipeline events: every trial profiles, probes happened, the second
    // job's ground-truth hits are visible both as events and counters.
    assert!(snap.events.iter().any(|e| e.kind == EventKind::Profile));
    assert!(snap.events.iter().any(|e| e.kind == EventKind::GtLookup));
    assert!(snap.events.iter().any(|e| e.kind == EventKind::Probe));
    assert!(snap.metrics.counter(observe::PROBE_COUNT) > 0);
    let total_outcome_epochs: u64 = outcomes.iter().map(|o| o.epochs_total).sum();
    assert_eq!(snap.metrics.gauge(observe::SCHEDULER_EPOCHS), Some(outcomes[1].epochs_total as f64));
    assert!(total_outcome_epochs > 0);
    assert!(snap.metrics.counter(observe::GT_HITS) > 0, "second job should hit the ground truth");

    // Exporters agree with the snapshot and stay non-empty.
    assert!(snap.to_line_protocol().contains("pipetune_span,kind=tuning_run"));
    let table = snap.summary_table();
    assert!(table.contains(observe::EPOCHS_TOTAL));
    assert!(table.contains("tuning_run"));
}

#[test]
fn real_traces_validate_and_round_trip_byte_identically() {
    for plan in [FaultPlan::none(), FaultPlan::mixed(7)] {
        let (_, snap) = run_traced(2, plan);

        // The recorded span tree satisfies the validation contract…
        snap.validate().expect("real traces are well-formed");

        // …and the JSON export is a true serialisation: parsing it back
        // and re-exporting reproduces the original bytes exactly.
        let text = snap.to_json_string();
        let parsed = TelemetrySnapshot::from_json_str(&text).expect("own exports re-import");
        assert_eq!(parsed.to_json_string(), text, "export → parse → export must be identity");
        parsed.validate().expect("re-imported traces stay well-formed");
    }
}

#[test]
fn faulty_runs_trace_faults_without_tracing_doomed_attempts() {
    let (_, snap) = run_traced(4, FaultPlan::mixed(7));

    // Fault and retry/checkpoint events are recorded explicitly…
    assert!(snap.events.iter().any(|e| e.kind == EventKind::Fault));
    assert!(snap.metrics.counter(cluster_observe::FAULTS_INJECTED) > 0);

    // …while rolled-back (suppressed) attempts never leak epoch spans: the
    // span count still matches the committed-epoch counter exactly.
    let epoch_spans = snap.spans.iter().filter(|s| s.kind == SpanKind::Epoch).count() as u64;
    assert_eq!(epoch_spans, snap.metrics.counter(observe::EPOCHS_TOTAL));

    // Fault gauges summarise the recovery accounting of the last run.
    assert!(snap.metrics.gauge(cluster_observe::FAULTS_WASTED_SECS).is_some());
    assert!(snap.metrics.gauge(cluster_observe::FAULTS_RECOVERY_SECS).is_some());
}
