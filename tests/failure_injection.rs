//! Failure-injection tests: the middleware must degrade gracefully when its
//! substrates misbehave — noisy counters, corrupt persistence, hostile
//! scores, pathological environments.

use pipetune::{
    ExperimentEnv, GroundTruth, HyperParams, PipeTune, ProbeGoal, SystemTuner, TrialExecution,
    TunerOptions, WorkloadSpec,
};
use pipetune_search::{HyperBand, ParamSpec, SearchSpace, TrialReport, TrialScheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pipetune_survives_a_pathologically_noisy_profiler() {
    // Blind spots on every multiplexed event, maximal noise: reuse decisions
    // may be wrong, but the tuner must complete and produce a valid model.
    let mut env = ExperimentEnv::distributed(2001);
    env.profiler.blind_spot_prob = 1.0;
    env.profiler.multiplex_noise = 0.5;
    let out = PipeTune::new(TunerOptions::fast())
        .run(&env, &WorkloadSpec::lenet_mnist())
        .expect("job must complete");
    assert!((0.0..=1.0).contains(&out.best_accuracy));
    assert!(out.tuning_secs.is_finite() && out.tuning_secs > 0.0);
}

#[test]
fn corrupt_ground_truth_file_is_reported_not_panicked() {
    let dir = std::env::temp_dir().join("pipetune_failinj");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("corrupt_gt.json");
    std::fs::write(&path, "{ definitely not [ valid").expect("write");
    let err = GroundTruth::load(&path, 2, 3.0, 1).expect_err("must fail");
    assert!(err.to_string().contains("corrupt"), "got: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn ground_truth_records_with_inconsistent_dimensions_fail_cleanly() {
    let mut gt = GroundTruth::paper_default(7);
    gt.record("a", &[1.0, 2.0], pipetune_cluster::SystemConfig::new(4, 8), 1.0).unwrap();
    gt.record("a", &[1.0, 2.0], pipetune_cluster::SystemConfig::new(4, 8), 1.0).unwrap();
    gt.record("b", &[1.0, 2.0, 3.0], pipetune_cluster::SystemConfig::new(8, 8), 1.0).unwrap();
    // Mixed dimensions: the automatic re-clustering on the 4th record must
    // surface a ClusteringError, not panic or corrupt state.
    let err = gt
        .record("b", &[1.0, 2.0, 3.0], pipetune_cluster::SystemConfig::new(8, 8), 1.0)
        .expect_err("refit over ragged features must fail");
    assert!(err.to_string().contains("dimension"), "got: {err}");
    // The store itself is still usable afterwards.
    assert_eq!(gt.len(), 4);
}

#[test]
fn hyperband_tolerates_nan_and_infinite_scores() {
    let space = SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)]);
    let mut hb = HyperBand::new(space, 9, 3, 3);
    let mut toggle = false;
    let mut guard = 0;
    while !hb.is_finished() {
        for r in hb.next_trials() {
            toggle = !toggle;
            let score = if toggle { f64::NAN } else { f64::NEG_INFINITY };
            hb.report(TrialReport { id: r.id, score, epochs_run: r.epochs });
        }
        guard += 1;
        assert!(guard < 1000, "scheduler wedged on hostile scores");
    }
    // Nothing sane was reported, but the scheduler still terminated.
    assert!(hb.is_finished());
}

#[test]
fn zero_core_probe_candidates_never_get_chosen() {
    // A hostile system space containing an unplaceable configuration: the
    // cost model prices it at infinity, so probing must route around it.
    let mut env = ExperimentEnv::distributed(2002);
    env.system_space.cores = vec![0, 4, 8];
    let hp = HyperParams { batch_size: 256, learning_rate: 0.02, epochs: 20, ..HyperParams::default() };
    let workload =
        WorkloadSpec::lenet_mnist().with_scale(0.2).instantiate(&hp, 1).expect("builds");
    let mut gt = GroundTruth::paper_default(1);
    let mut trial = TrialExecution::new(workload, SystemTuner::pipelined(ProbeGoal::Runtime));
    let mut rng = StdRng::seed_from_u64(5);
    trial.run_epochs(&env, 12, Some(&mut gt), 1.0, &mut rng).expect("runs");
    let chosen = trial.tuner().chosen().expect("probing finished");
    assert!(chosen.cores > 0, "chose the unplaceable config {chosen}");
}

#[test]
fn empty_epoch_requests_are_noops() {
    let env = ExperimentEnv::distributed(2003);
    let hp = HyperParams::default();
    let workload =
        WorkloadSpec::bfs().with_scale(0.2).instantiate(&hp, 1).expect("builds");
    let mut trial = TrialExecution::new(workload, SystemTuner::Fixed(env.default_system));
    let mut rng = StdRng::seed_from_u64(5);
    trial.run_epochs(&env, 0, None, 1.0, &mut rng).expect("noop");
    assert_eq!(trial.records().len(), 0);
    assert_eq!(trial.duration_secs(), 0.0);
}

#[test]
fn extreme_contention_still_yields_finite_times() {
    let env = ExperimentEnv::distributed(2004);
    let hp = HyperParams::default();
    let workload =
        WorkloadSpec::lenet_mnist().with_scale(0.2).instantiate(&hp, 1).expect("builds");
    let mut trial = TrialExecution::new(workload, SystemTuner::Fixed(env.default_system));
    let mut rng = StdRng::seed_from_u64(6);
    trial.run_epochs(&env, 2, None, 1e6, &mut rng).expect("runs");
    assert!(trial.duration_secs().is_finite());
    assert!(trial.energy_j().is_finite());
}

#[test]
fn tsdb_rejects_garbage_line_protocol_mid_import() {
    let db = pipetune_tsdb::Database::new();
    let text = "m f=1 10\nm f=2 20\nBROKEN LINE\nm f=3 30";
    let err = db.import_line_protocol(text).expect_err("must fail");
    assert!(err.to_string().contains("corrupt"));
    // Lines before the failure are retained (documented behaviour).
    assert_eq!(db.len(), 2);
}
