//! Failure-injection tests: the middleware must degrade gracefully when its
//! substrates misbehave — noisy counters, corrupt persistence, hostile
//! scores, pathological environments.

use pipetune::{
    ExperimentEnv, FaultPlan, GroundTruth, HyperParams, PipeTune, PipeTuneError, ProbeGoal,
    SystemTuner, TrialExecution, TuneV2, TunerOptions, WorkloadSpec,
};
use pipetune_search::{HyperBand, ParamSpec, SearchSpace, TrialReport, TrialScheduler};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pipetune_survives_a_pathologically_noisy_profiler() {
    // Blind spots on every multiplexed event, maximal noise: reuse decisions
    // may be wrong, but the tuner must complete and produce a valid model.
    let mut env = ExperimentEnv::distributed(2001);
    env.profiler.blind_spot_prob = 1.0;
    env.profiler.multiplex_noise = 0.5;
    let out = PipeTune::new(TunerOptions::fast())
        .run(&env, &WorkloadSpec::lenet_mnist())
        .expect("job must complete");
    assert!((0.0..=1.0).contains(&out.best_accuracy));
    assert!(out.tuning_secs.is_finite() && out.tuning_secs > 0.0);
}

#[test]
fn corrupt_ground_truth_file_is_reported_not_panicked() {
    let dir = std::env::temp_dir().join("pipetune_failinj");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("corrupt_gt.json");
    std::fs::write(&path, "{ definitely not [ valid").expect("write");
    let err = GroundTruth::load(&path, 2, 3.0, 1).expect_err("must fail");
    assert!(err.to_string().contains("corrupt"), "got: {err}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn ground_truth_records_with_inconsistent_dimensions_fail_cleanly() {
    let mut gt = GroundTruth::paper_default(7);
    gt.record("a", &[1.0, 2.0], pipetune_cluster::SystemConfig::new(4, 8), 1.0).unwrap();
    gt.record("a", &[1.0, 2.0], pipetune_cluster::SystemConfig::new(4, 8), 1.0).unwrap();
    gt.record("b", &[1.0, 2.0, 3.0], pipetune_cluster::SystemConfig::new(8, 8), 1.0).unwrap();
    // Mixed dimensions: the automatic re-clustering on the 4th record must
    // surface a ClusteringError, not panic or corrupt state.
    let err = gt
        .record("b", &[1.0, 2.0, 3.0], pipetune_cluster::SystemConfig::new(8, 8), 1.0)
        .expect_err("refit over ragged features must fail");
    assert!(err.to_string().contains("dimension"), "got: {err}");
    // The store itself is still usable afterwards.
    assert_eq!(gt.len(), 4);
}

#[test]
fn hyperband_tolerates_nan_and_infinite_scores() {
    let space = SearchSpace::new(vec![ParamSpec::float_range("x", 0.0, 1.0, false)]);
    let mut hb = HyperBand::new(space, 9, 3, 3);
    let mut toggle = false;
    let mut guard = 0;
    while !hb.is_finished() {
        for r in hb.next_trials() {
            toggle = !toggle;
            let score = if toggle { f64::NAN } else { f64::NEG_INFINITY };
            hb.report(TrialReport { id: r.id, score, epochs_run: r.epochs });
        }
        guard += 1;
        assert!(guard < 1000, "scheduler wedged on hostile scores");
    }
    // Nothing sane was reported, but the scheduler still terminated.
    assert!(hb.is_finished());
}

#[test]
fn zero_core_probe_candidates_never_get_chosen() {
    // A hostile system space containing an unplaceable configuration: the
    // cost model prices it at infinity, so probing must route around it.
    let mut env = ExperimentEnv::distributed(2002);
    env.system_space.cores = vec![0, 4, 8];
    let hp = HyperParams { batch_size: 256, learning_rate: 0.02, epochs: 20, ..HyperParams::default() };
    let workload =
        WorkloadSpec::lenet_mnist().with_scale(0.2).instantiate(&hp, 1).expect("builds");
    let mut gt = GroundTruth::paper_default(1);
    let mut trial = TrialExecution::new(workload, SystemTuner::pipelined(ProbeGoal::Runtime));
    let mut rng = StdRng::seed_from_u64(5);
    trial.run_epochs(&env, 12, Some(&mut gt), 1.0, &mut rng).expect("runs");
    let chosen = trial.tuner().chosen().expect("probing finished");
    assert!(chosen.cores > 0, "chose the unplaceable config {chosen}");
}

#[test]
fn empty_epoch_requests_are_noops() {
    let env = ExperimentEnv::distributed(2003);
    let hp = HyperParams::default();
    let workload =
        WorkloadSpec::bfs().with_scale(0.2).instantiate(&hp, 1).expect("builds");
    let mut trial = TrialExecution::new(workload, SystemTuner::Fixed(env.default_system));
    let mut rng = StdRng::seed_from_u64(5);
    trial.run_epochs(&env, 0, None, 1.0, &mut rng).expect("noop");
    assert_eq!(trial.records().len(), 0);
    assert_eq!(trial.duration_secs(), 0.0);
}

#[test]
fn extreme_contention_still_yields_finite_times() {
    let env = ExperimentEnv::distributed(2004);
    let hp = HyperParams::default();
    let workload =
        WorkloadSpec::lenet_mnist().with_scale(0.2).instantiate(&hp, 1).expect("builds");
    let mut trial = TrialExecution::new(workload, SystemTuner::Fixed(env.default_system));
    let mut rng = StdRng::seed_from_u64(6);
    trial.run_epochs(&env, 2, None, 1e6, &mut rng).expect("runs");
    assert!(trial.duration_secs().is_finite());
    assert!(trial.energy_j().is_finite());
}

#[test]
fn crash_every_epoch_abandons_the_trial_after_the_retry_budget() {
    // Certain crash probability: every attempt of every epoch dies, so the
    // first epoch burns the whole retry budget and the trial is abandoned
    // with a typed error.
    let env = ExperimentEnv::distributed(2005).with_fault_plan(FaultPlan::crashes(31, 1.0));
    let hp = HyperParams { batch_size: 256, learning_rate: 0.02, epochs: 20, ..HyperParams::default() };
    let workload =
        WorkloadSpec::lenet_mnist().with_scale(0.2).instantiate(&hp, 1).expect("builds");
    let mut trial =
        TrialExecution::new(workload, SystemTuner::Fixed(env.default_system)).with_trial_id(7);
    let mut rng = StdRng::seed_from_u64(9);
    let err = trial.run_epochs(&env, 3, None, 1.0, &mut rng).expect_err("must abandon");
    match err {
        PipeTuneError::RetriesExhausted { trial_id, attempts } => {
            assert_eq!(trial_id, 7);
            assert_eq!(attempts, env.retry.max_attempts);
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
    assert_eq!(trial.fault_report().abandoned, 1);
}

#[test]
fn scheduler_terminates_when_every_trial_is_abandoned() {
    // At the job level, universal abandonment must not wedge the scheduler:
    // abandoned trials score NEG_INFINITY, HyperBand drains normally, and
    // the run surfaces a descriptive error instead of hanging or panicking.
    let env = ExperimentEnv::distributed(2006).with_fault_plan(FaultPlan::crashes(32, 1.0));
    let err = PipeTune::new(TunerOptions::fast())
        .run(&env, &WorkloadSpec::lenet_mnist())
        .expect_err("no trial can survive a certain crash");
    assert!(err.to_string().contains("abandoned"), "got: {err}");
}

#[test]
fn straggler_only_plan_changes_durations_but_not_accuracies() {
    // Stragglers slow epochs down without losing work, so the tuned model
    // and every trial accuracy must be bit-equal to the fault-free run;
    // only the clocks (and the fault report) move.
    let clean_env = ExperimentEnv::distributed(2007);
    let slow_env = ExperimentEnv::distributed(2007).with_fault_plan(FaultPlan::stragglers(33, 0.4));
    let clean =
        PipeTune::new(TunerOptions::fast()).run(&clean_env, &WorkloadSpec::lenet_mnist()).unwrap();
    let slow =
        PipeTune::new(TunerOptions::fast()).run(&slow_env, &WorkloadSpec::lenet_mnist()).unwrap();
    assert!(slow.fault_report.stragglers > 0, "plan should inject stragglers");
    assert_eq!(slow.fault_report.crashes, 0);
    assert_eq!(slow.fault_report.abandoned, 0);
    assert_eq!(slow.best_accuracy.to_bits(), clean.best_accuracy.to_bits());
    // Same trials, same accuracies (completion order may shift with the
    // inflated clocks, so compare as multisets).
    let accs = |o: &pipetune::TuningOutcome| {
        let mut a: Vec<u32> = o.convergence.iter().map(|p| p.accuracy.to_bits()).collect();
        a.sort_unstable();
        a
    };
    assert_eq!(accs(&slow), accs(&clean));
    assert!(
        slow.tuning_secs > clean.tuning_secs,
        "stragglers must inflate tuning time: {} vs {}",
        slow.tuning_secs,
        clean.tuning_secs
    );
    assert!(slow.fault_report.wasted_epoch_secs > 0.0);
}

#[test]
fn pipetune_still_beats_tune_v2_on_tuning_time_under_faults() {
    // Table 2's headline must survive a hostile cluster: under one identical
    // mixed fault plan, PipeTune's tuning time stays ahead of Tune V2's.
    let plan = FaultPlan::mixed(34);
    let env = ExperimentEnv::distributed(2008).with_fault_plan(plan.clone());
    let pipetune =
        PipeTune::new(TunerOptions::fast()).run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
    let v2 = TuneV2::new(TunerOptions::fast()).run(&env, &WorkloadSpec::lenet_mnist()).unwrap();
    assert!(
        pipetune.tuning_secs < v2.tuning_secs,
        "PipeTune {}s vs Tune V2 {}s under faults",
        pipetune.tuning_secs,
        v2.tuning_secs
    );
    assert!(pipetune.fault_report.injected > 0);
    assert!(v2.fault_report.injected > 0);
}

#[test]
fn crash_recovery_completes_with_accuracy_parity() {
    // Moderate crash probability: the retry budget absorbs the crashes, the
    // job completes, recovery is visible in the report, and — because
    // crashed attempts roll model and RNG state back to the epoch boundary —
    // the tuned accuracy stays within a tight parity band of the fault-free
    // run.
    let clean_env = ExperimentEnv::distributed(2009);
    let crash_env = ExperimentEnv::distributed(2009).with_fault_plan(FaultPlan::crashes(35, 0.05));
    let clean =
        PipeTune::new(TunerOptions::fast()).run(&clean_env, &WorkloadSpec::lenet_mnist()).unwrap();
    let crashed =
        PipeTune::new(TunerOptions::fast()).run(&crash_env, &WorkloadSpec::lenet_mnist()).unwrap();
    assert!(crashed.fault_report.crashes > 0, "plan should inject crashes");
    assert!(crashed.fault_report.recovered > 0, "crashes should be recovered from");
    assert!(crashed.fault_report.recovery_overhead_secs > 0.0, "backoff costs simulated time");
    assert!(
        (f64::from(crashed.best_accuracy) - f64::from(clean.best_accuracy)).abs() < 0.02,
        "accuracy parity violated: {} vs {}",
        crashed.best_accuracy,
        clean.best_accuracy
    );
    assert!(crashed.tuning_secs > clean.tuning_secs, "recovery is not free");
}

#[test]
fn tsdb_rejects_garbage_line_protocol_mid_import() {
    let db = pipetune_tsdb::Database::new();
    let text = "m f=1 10\nm f=2 20\nBROKEN LINE\nm f=3 30";
    let err = db.import_line_protocol(text).expect_err("must fail");
    assert!(err.to_string().contains("corrupt"));
    // Lines before the failure are retained (documented behaviour).
    assert_eq!(db.len(), 2);
}
