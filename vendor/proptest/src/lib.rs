//! Offline stand-in for the `proptest` crate.
//!
//! Covers the surface this workspace's property suites use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, `prop_map`, `proptest::collection::vec`, string strategies
//! from simple character-class patterns, and `prop_assert!`/
//! `prop_assert_eq!`.
//!
//! Differences from upstream, deliberate for offline determinism: cases are
//! sampled from a seed derived from the test's module path and name (no
//! entropy, no persistence — `.proptest-regressions` files are ignored) and
//! failing cases are reported with their inputs but not shrunk.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

pub mod strategy {
    use rand::rngs::StdRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample_value(rng))
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample_value(&self, rng: &mut StdRng) -> T {
            rand::SampleRange::sample_from(self.clone(), rng)
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn sample_value(&self, rng: &mut StdRng) -> T {
            rand::SampleRange::sample_from(self.clone(), rng)
        }
    }

    /// String strategies from character-class patterns (see
    /// [`crate::string_from_pattern`]).
    impl Strategy for &str {
        type Value = String;

        fn sample_value(&self, rng: &mut StdRng) -> String {
            crate::string_from_pattern(self, rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Inclusive bounds on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty proptest size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy generating `Vec`s of `element` samples.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`vec()`](crate::collection::vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }

    /// Strategy generating `BTreeSet`s of `element` samples. As in
    /// upstream proptest, duplicate draws are retried a bounded number of
    /// times, so the produced set can be smaller than the drawn size when
    /// the element domain is narrow.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// Strategy returned by [`btree_set()`](crate::collection::btree_set).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn sample_value(&self, rng: &mut StdRng) -> std::collections::BTreeSet<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < len && attempts < len * 10 + 10 {
                out.insert(self.element.sample_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    //! Strategies drawing from fixed option sets.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy choosing uniformly among a fixed set of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "proptest select needs at least one option");
        Select { options }
    }

    /// Strategy returned by [`select()`](crate::sample::select).
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

/// Per-suite configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Sets the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256; this workspace's properties
    /// exercise simulations where 64 seeded cases already dominate runtime.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (returned by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Deterministic per-case RNG: seeded from the property's identity and case
/// index so failures reproduce without a regressions file.
pub fn rng_for_case(test_path: &str, case: u64) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Generates a string from a pattern of character classes: a sequence of
/// `[class]` atoms or literal characters, each optionally followed by
/// `{n}` / `{m,n}`. Classes support `a-z` ranges and literals (a trailing
/// `-` is literal). This covers the regex subset the workspace's property
/// suites use; anything fancier panics so the gap is visible.
pub fn string_from_pattern(pattern: &str, rng: &mut StdRng) -> String {
    use rand::Rng;

    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        // Parse one atom into the set of characters it can produce.
        let choices: Vec<char> = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "inverted class range in `{pattern}`");
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in `{pattern}`");
                i += 1; // closing ']'
                set
            }
            c @ ('(' | ')' | '|' | '*' | '+' | '?' | '.' | '\\' | '^' | '$') => {
                panic!("proptest stand-in: unsupported regex construct `{c}` in `{pattern}`")
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        assert!(!choices.is_empty(), "empty character class in `{pattern}`");

        // Optional repetition `{n}` or `{m,n}`.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated repetition") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("bad repetition lower bound"),
                    n.trim().parse::<usize>().expect("bad repetition upper bound"),
                ),
                None => {
                    let n = body.trim().parse::<usize>().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };

        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(choices[rng.gen_range(0..choices.len())]);
        }
    }
    out
}

/// Declares a suite of property tests. Each body runs `cases` times with
/// freshly sampled inputs; assertion failures report the sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng = $crate::rng_for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::sample_value(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),*)
                        $(, &$arg)*
                    );
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__e) = __result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __e,
                            __inputs,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// input reporting) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond),
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+),
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` — {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Map, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
    /// Upstream-compatible alias: `prop::sample::select`,
    /// `prop::collection::vec`, ... resolve through the crate root.
    pub use crate as prop;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strings_match_expectations() {
        let mut rng = crate::rng_for_case("pattern", 1);
        for _ in 0..200 {
            let s = crate::string_from_pattern("[a-zA-Z][a-zA-Z0-9 ,=_-]{0,16}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 17, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_alphabetic(), "{s:?}");
            assert!(
                s.chars().all(|c| c.is_ascii_alphanumeric() || " ,=_-".contains(c)),
                "{s:?}"
            );
        }
        let exact = crate::string_from_pattern("ab{3}c", &mut rng);
        assert_eq!(exact, "abbbc");
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = crate::rng_for_case("sizes", 0);
        for _ in 0..100 {
            let v = Strategy::sample_value(&collection::vec(0.0..1.0f64, 0..40), &mut rng);
            assert!(v.len() < 40);
            let exact = Strategy::sample_value(&collection::vec(1.0..500.0f64, 12), &mut rng);
            assert_eq!(exact.len(), 12);
            assert!(exact.iter().all(|x| (1.0..500.0).contains(x)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_samples_in_range(
            x in 1u32..64,
            y in -1.0..1.0f64,
            pair in (0u64..10, 0u64..10).prop_map(|(p, q)| (p, p + q)),
        ) {
            let (a, b) = pair;
            prop_assert!((1..64).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
            prop_assert!(b >= a);
            prop_assert_eq!(a.min(b), a);
        }
    }

    #[test]
    #[should_panic(expected = "inputs:")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(unused)]
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        always_fails();
    }
}
