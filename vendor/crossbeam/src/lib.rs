//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the `crossbeam::thread::scope` API the trial executor uses,
//! implemented on `std::thread::scope` (stable since 1.63). Only the subset
//! the workspace needs is covered: scoped spawning where every closure
//! receives the scope again (so workers could spawn sub-workers), join
//! handles, and the `Result`-returning `scope` entry point.

pub mod thread {
    use std::any::Any;

    /// Error payload of a panicked scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// A scope for spawning borrowing threads (mirrors
    /// `crossbeam::thread::Scope`).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread (mirrors `crossbeam`'s handle).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives the
        /// scope so nested spawns are possible.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; joins them all before returning.
    ///
    /// # Errors
    ///
    /// Unlike `std::thread::scope` (which re-panics), this mirrors
    /// crossbeam by returning `Err` only if the closure itself panics is
    /// not catchable here — spawned-thread panics propagate at join, so the
    /// result is always `Ok` unless a child panic was left unjoined, in
    /// which case std re-raises it. Callers should treat `Err` as fatal.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sum: i32 = super::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<i32>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let r = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(r, 42);
    }
}
