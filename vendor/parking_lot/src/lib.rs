//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps the std synchronisation primitives behind `parking_lot`'s
//! poison-free API (`lock()` / `read()` / `write()` return guards directly).
//! A poisoned std lock is recovered rather than propagated: panics in this
//! workspace abort the affected test anyway, and the stand-in must keep the
//! `parking_lot` signatures, which have no poison channel to report through.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Poison-free mutex with the `parking_lot::Mutex` API subset the workspace
/// uses.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock with the `parking_lot::RwLock` API subset
/// the workspace uses.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(l.into_inner(), 7);
    }
}
