//! Offline stand-in for `serde_derive`.
//!
//! Dependency-free derive macros for the vendored `serde` facade. The input
//! item is parsed by walking `proc_macro::TokenTree`s (no syn/quote), which
//! keeps this crate self-contained, and the generated impls target the
//! facade's `Content` data model rather than upstream's visitor API.
//!
//! Supported input shapes — exactly what this workspace derives on:
//! named structs (with `#[serde(default)]` / `#[serde(default = "path")]`
//! field attributes), tuple and unit structs, and enums with unit, tuple
//! and struct variants (externally tagged, as upstream). Generics are
//! rejected loudly rather than miscompiled.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a named struct or struct variant.
struct Field {
    name: String,
    /// `None`: required. `Some(None)`: `#[serde(default)]`.
    /// `Some(Some(path))`: `#[serde(default = "path")]`.
    default: Option<Option<String>>,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (stand-in `to_content` form).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input).parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (stand-in `from_content` form).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments arrive as `#[doc = "…"]`) and
    // visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                break
            }
            other => panic!("serde stand-in derive: unexpected token {other:?}"),
        }
    }

    let is_struct = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "struct");
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde stand-in derive: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde stand-in derive: generic type `{name}` is not supported");
        }
    }
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "where" {
            panic!("serde stand-in derive: where-clauses on `{name}` are not supported");
        }
    }

    let shape = if is_struct {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde stand-in derive: malformed struct body: {other:?}"),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stand-in derive: malformed enum body: {other:?}"),
        }
    };

    Input { name, shape }
}

/// Parses `#[serde(...)]` bracket content; returns the field default spec if
/// this is a serde attribute.
fn parse_serde_attr(bracket: TokenStream) -> Option<Option<String>> {
    let tokens: Vec<TokenTree> = bracket.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let group = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        other => panic!("serde stand-in derive: malformed #[serde] attribute: {other:?}"),
    };
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        other => panic!(
            "serde stand-in derive: only #[serde(default)] / #[serde(default = \"path\")] \
             are supported, got {other:?}"
        ),
    }
    match inner.get(1) {
        None => Some(None),
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            let lit = match inner.get(2) {
                Some(TokenTree::Literal(l)) => l.to_string(),
                other => panic!("serde stand-in derive: expected path literal, got {other:?}"),
            };
            let path = lit.trim_matches('"').to_string();
            Some(Some(path))
        }
        other => panic!("serde stand-in derive: malformed default attribute: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let mut default = None;
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(d) = parse_serde_attr(g.stream()) {
                    default = Some(d);
                }
            }
            i += 2;
        }
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde stand-in derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stand-in derive: expected `:` after `{name}`, got {other:?}"),
        }
        // Skip the type: commas inside `<…>` (e.g. BTreeMap<String, f64>) are
        // at this token level because angle brackets are not delimiters.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut pending = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        // Skip variant attributes (`#[default]`, doc comments).
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde stand-in derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde stand-in derive: explicit discriminants are not supported")
            }
            _ => {}
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// Attribute prefix shared by generated impls: keeps rustc and clippy from
/// linting machine-generated code (string-parsed tokens carry call-site
/// spans, so lints would otherwise fire on it).
const IMPL_ATTRS: &str = "#[automatically_derived]\n#[allow(warnings, clippy::all, clippy::pedantic)]\n";

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields {
                entries.push_str(&format!(
                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content(&self.{0})),",
                    f.name
                ));
            }
            format!("::serde::Content::Map(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let mut items = String::new();
            for idx in 0..*n {
                items.push_str(&format!("::serde::Serialize::to_content(&self.{idx}),"));
            }
            format!("::serde::Content::Seq(::std::vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Content::Str(::std::string::String::from(\"{vname}\")),"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Content::Map(::std::vec![(\
                         ::std::string::String::from(\"{vname}\"), \
                         ::serde::Serialize::to_content(f0))]),"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Content::Seq(::std::vec![{}]))]),",
                            binds.join(","),
                            items.join(",")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_content({0})),",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Content::Map(::std::vec![{}]))]),",
                            binds.join(","),
                            items.concat()
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

/// Emits the expression deserializing one named field from `__entries`.
fn field_expr(type_name: &str, f: &Field) -> String {
    let missing = match &f.default {
        None => format!(
            "return ::std::result::Result::Err(::serde::DeError::custom(\
             format!(\"{type_name}: missing field `{}`\")))",
            f.name
        ),
        Some(None) => "::std::default::Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
    };
    format!(
        "{0}: match ::serde::content_get(__entries, \"{0}\") {{\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::from_content(__v)?,\
         ::std::option::Option::None => {missing},\
         }},",
        f.name
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let field_exprs: String = fields.iter().map(|f| field_expr(name, f)).collect();
            format!(
                "let __entries = content.as_map_slice().ok_or_else(|| \
                 ::serde::DeError::custom(\"{name}: expected a map\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {field_exprs} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(content)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_content(&__seq[{k}])?,"))
                .collect();
            format!(
                "let __seq = content.as_seq().ok_or_else(|| \
                 ::serde::DeError::custom(\"{name}: expected a sequence\"))?;\n\
                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::custom(\"{name}: wrong tuple length\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.concat()
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                        // Also accept the map form `{"Variant": null}`.
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                         ::serde::Deserialize::from_content(__inner)?)),"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_content(&__seq[{k}])?,"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\
                             let __seq = __inner.as_seq().ok_or_else(|| \
                             ::serde::DeError::custom(\"{name}::{vname}: expected a sequence\"))?;\
                             if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::custom(\"{name}::{vname}: wrong tuple length\")); }}\
                             ::std::result::Result::Ok({name}::{vname}({}))\
                             }},",
                            items.concat()
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let qualified = format!("{name}::{vname}");
                        let field_exprs: String =
                            fields.iter().map(|f| field_expr(&qualified, f)).collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\
                             let __entries = __inner.as_map_slice().ok_or_else(|| \
                             ::serde::DeError::custom(\"{qualified}: expected a map\"))?;\
                             ::std::result::Result::Ok({name}::{vname} {{ {field_exprs} }})\
                             }},",
                        ));
                    }
                }
            }
            format!(
                "match content {{\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"{name}: unknown variant `{{}}`\", __other))),\
                 }},\
                 ::serde::Content::Map(__m) if __m.len() == 1 => {{\
                 let (__tag, __inner) = &__m[0];\
                 match __tag.as_str() {{\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"{name}: unknown variant `{{}}`\", __other))),\
                 }}\
                 }},\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"{name}: expected a variant string or single-entry map\")),\
                 }}"
            )
        }
    };
    format!(
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n\
         fn from_content(content: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
