//! Offline stand-in for the `serde` crate.
//!
//! Instead of upstream's serializer/deserializer visitor machinery, this
//! facade round-trips every value through a [`Content`] tree — a
//! self-describing data model that `serde_json` (the only format in this
//! workspace) renders to and from text. `Serialize`/`Deserialize` keep their
//! upstream names so `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` (via the vendored `serde_derive`,
//! re-exported under the `derive` feature) work unchanged.

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all values serialize through.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Unit / `None` / JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence (vectors, slices, tuples).
    Seq(Vec<Content>),
    /// Key-value map (structs, maps, tagged enum variants). Kept as a vec of
    /// pairs to preserve insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    pub fn as_map_slice(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks a key up in struct-map entries (helper for derived impls).
pub fn content_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError { msg: msg.to_string() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization to the [`Content`] data model.
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialization from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a content tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape or types don't match.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ------------------------------------------------------------- primitives

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide = match content {
                    Content::I64(v) => i128::from(*v),
                    Content::U64(v) => i128::from(*v),
                    other => return Err(DeError::custom(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = u64::try_from(*self).expect("unsigned fits u64");
                match i64::try_from(v) {
                    Ok(i) => Content::I64(i),
                    Err(_) => Content::U64(v),
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let wide = match content {
                    Content::I64(v) => i128::from(*v),
                    Content::U64(v) => i128::from(*v),
                    other => return Err(DeError::custom(format!(
                        "expected integer, got {other:?}"))),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError::custom(format!(
                        "integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for isize {
    fn to_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        i64::from_content(content).and_then(|v| {
            isize::try_from(v).map_err(|_| DeError::custom("integer out of range for isize"))
        })
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            // Non-finite floats serialize as null (JSON has no NaN literal).
            Content::Null => Ok(f64::NAN),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

/// `&'static str` fields (experiment row labels) deserialize by leaking the
/// parsed string. The workspace only reads back a handful of short labels
/// per process, so the leak is bounded and deliberate.
impl Deserialize for &'static str {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = Vec::<T>::from_content(content)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {got}")))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected map, got {other:?}"))),
        }
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected {expected}-tuple, got {} elements", seq.len())));
                }
                Ok(($($t::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i32::from_content(&(-7i32).to_content()).unwrap(), -7);
        assert_eq!(f32::from_content(&1.5f32.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_content()).unwrap(), "hi");
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_content(&Content::I64(300)).is_err());
        assert!(u32::from_content(&Content::I64(-1)).is_err());
    }

    #[test]
    fn options_vecs_maps_round_trip() {
        let v: Option<Vec<(String, f64)>> = Some(vec![("a".into(), 1.0), ("b".into(), 2.5)]);
        let back = Option::<Vec<(String, f64)>>::from_content(&v.to_content()).unwrap();
        assert_eq!(back, v);

        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_content(&none.to_content()).unwrap(), None);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        assert_eq!(BTreeMap::<String, u64>::from_content(&m.to_content()).unwrap(), m);
    }
}
