//! Offline stand-in for the `rand` crate.
//!
//! Implements the API subset this workspace uses — `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64`, `rngs::StdRng`,
//! `rngs::mock::StepRng` and `seq::SliceRandom::shuffle` — on top of a
//! xoshiro256** generator. Streams differ from upstream `rand`'s
//! ChaCha-based `StdRng`, which is fine here: every consumer in the
//! workspace is seeded explicitly and asserts statistical or structural
//! properties, never upstream-specific streams.

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that `Rng::gen` can produce.
pub trait StandardSample: Sized {
    /// Draws a value from the "standard" distribution of the type
    /// (uniform `[0, 1)` for floats, uniform over all values for ints,
    /// fair coin for bool).
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges `Rng::gen_range` accepts. The produced type `T` is a trait
/// parameter (as upstream) so an expected output type drives inference of
/// unsuffixed literals in the range expression.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by rejection sampling on 64-bit words
/// (`span` ≤ 2^64 always holds for the primitive ranges above).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= 1 << 64);
    if span == 1 << 64 {
        return u128::from(rng.next_u64());
    }
    let span64 = span as u64;
    // Largest multiple of span that fits in u64; draws above it would bias.
    let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return u128::from(v % span64);
        }
    }
}

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as StandardSample>::standard_sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// High-level generator interface (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws from the type's standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of upstream's trait: everything in this
/// workspace seeds from a `u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, splitmix-expanded to the full
    /// state as upstream does for small seeds.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with splitmix64
    /// seed expansion. Deterministic per seed, `Clone` for replay.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 never
            // produces four zeros from one stream, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for replay-exact persistence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        /// The all-zero fixed point is mapped to a non-zero state, matching
        /// the guard in `seed_from_u64`.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// Mock generator yielding `initial`, `initial + increment`, … —
        /// mirrors `rand::rngs::mock::StepRng`.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            a: u64,
        }

        impl StepRng {
            /// Creates a stepping generator.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { v: initial, a: increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let r = self.v;
                self.v = self.v.wrapping_add(self.a);
                r
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice shuffling (the `SliceRandom` subset the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_decorrelated_across_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover() {
        let mut r = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.25;
            hi |= f > 0.75;
            let g: f32 = r.gen();
            assert!((0.0..1.0).contains(&g));
        }
        assert!(lo && hi, "poor coverage of [0, 1)");
    }

    #[test]
    fn int_ranges_hit_every_value_without_bias_holes() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [0u32; 5];
        for _ in 0..5000 {
            seen[r.gen_range(0usize..5)] += 1;
            let v = r.gen_range(-1i32..=1);
            assert!((-1..=1).contains(&v));
        }
        assert!(seen.iter().all(|&c| c > 800), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn step_rng_steps() {
        let mut s = StepRng::new(0, 1);
        assert_eq!(s.gen::<u64>(), 0);
        assert_eq!(s.gen::<u64>(), 1);
    }
}
