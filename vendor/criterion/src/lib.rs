//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock harness exposing the surface the workspace's bench
//! targets use: `Criterion::default().sample_size(n)`, `bench_function`,
//! `Bencher::iter`, and both arities of `criterion_group!` plus
//! `criterion_main!`. No statistics beyond mean-of-samples; each benchmark
//! prints `name: time: [.. mean ..]` in a criterion-like line so humans and
//! scripts can still grep timings.

use std::time::{Duration, Instant};

/// Per-benchmark measurement driver passed to the closure given to
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    budget: Duration,
    /// Mean nanoseconds per iteration, recorded by [`Bencher::iter`].
    mean_ns: f64,
    total_iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up briefly, then taking up to
    /// `samples` timed samples within the time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until ~50ms elapsed or 3 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || (warm_start.elapsed() < Duration::from_millis(50) && warm_iters < 1000) {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() > Duration::from_millis(200) {
                break;
            }
        }

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            total += t0.elapsed();
            iters += 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.total_iters = iters;
        self.mean_ns = if iters == 0 { 0.0 } else { total.as_nanos() as f64 / iters as f64 };
    }
}

/// Benchmark runner configuration (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(5) }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark time budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its mean time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            budget: self.measurement_time,
            mean_ns: 0.0,
            total_iters: 0,
        };
        f(&mut b);
        println!(
            "{name}: time: [{} {} {}] ({} iters)",
            fmt_ns(b.mean_ns),
            fmt_ns(b.mean_ns),
            fmt_ns(b.mean_ns),
            b.total_iters
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Declares a benchmark group; both the plain list form and the
/// `name/config/targets` struct form are supported, as upstream.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny_add", |b| b.iter(|| 1u64 + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5).measurement_time(Duration::from_millis(50));
        targets = tiny
    }

    criterion_group!(benches_plain, tiny);

    #[test]
    fn groups_run() {
        benches();
        benches_plain();
    }

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(20));
        let mut ran = 0u32;
        c.bench_function("count", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran >= 3);
    }
}
