//! Offline stand-in for the `serde_json` crate.
//!
//! Implements the API subset the workspace uses — [`Value`], [`Map`],
//! [`to_value`], [`to_string`], [`to_string_pretty`], [`from_str`] and the
//! [`json!`] macro — over the vendored `serde` facade's `Content` model.
//! Numbers keep their integer/float distinction; non-finite floats render as
//! `null` (JSON has no NaN/Infinity literals).

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// JSON object map. Generic alias so the upstream spelling
/// `serde_json::Map<String, Value>` type-checks; keys are always strings.
pub type Map<K, V> = std::collections::BTreeMap<K, V>;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer that fits `i64`.
    I64(i64),
    /// Integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map<String, Value>),
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(v) => u64::try_from(*v).ok(),
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(v) => Some(*v as f64),
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup without panicking.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    fn from_json_content(content: &Content) -> Value {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(*b),
            Content::I64(v) => Value::I64(*v),
            Content::U64(v) => Value::U64(*v),
            Content::F64(v) => Value::F64(*v),
            Content::Str(s) => Value::String(s.clone()),
            Content::Seq(items) => {
                Value::Array(items.iter().map(Value::from_json_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries.iter().map(|(k, v)| (k.clone(), Value::from_json_content(v))).collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(*b),
            Value::I64(v) => Content::I64(*v),
            Value::U64(v) => Content::U64(*v),
            Value::F64(v) => Content::F64(*v),
            Value::String(s) => Content::Str(s.clone()),
            Value::Array(a) => Content::Seq(a.iter().map(Serialize::to_content).collect()),
            Value::Object(o) => {
                Content::Map(o.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
            }
        }
    }
}

impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(Value::from_json_content(content))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Missing members index to `null`, as upstream.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// Out-of-bounds indexes to `null`, as upstream.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this stand-in (kept `Result` for API compatibility).
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(Value::from_json_content(&value.to_content()))
}

/// Serializes to compact JSON text.
///
/// # Errors
///
/// Infallible in this stand-in (kept `Result` for API compatibility).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (2-space indent).
///
/// # Errors
///
/// Infallible in this stand-in (kept `Result` for API compatibility).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_content(&content)?)
}

/// Builds a [`Value`] from JSON-ish syntax. Supports object literals with
/// literal keys, array literals, `null`, and arbitrary serializable
/// expressions — the forms this workspace uses.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([$($elem:expr),* $(,)?]) => {
        $crate::Value::Array(vec![$($crate::json!($elem)),*])
    };
    ({$($key:literal : $val:expr),* $(,)?}) => {{
        let mut object: $crate::Map<::std::string::String, $crate::Value> =
            ::std::default::Default::default();
        $(
            object.insert(
                ::std::string::String::from($key),
                $crate::to_value(&$val).unwrap_or($crate::Value::Null),
            );
        )*
        $crate::Value::Object(object)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap_or($crate::Value::Null)
    };
}

// ------------------------------------------------------------------ writer

fn write_content(content: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => {
            out.push_str(&v.to_string());
        }
        Content::U64(v) => {
            out.push_str(&v.to_string());
        }
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips, and
        // always includes a `.0` or exponent for integral values.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                char::from(b),
                self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}`",
                                char::from(other)
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..self.pos)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        self.pos += 4;
        let text = std::str::from_utf8(chunk).map_err(|_| Error::new("bad \\u escape"))?;
        u32::from_str_radix(text, 16).map_err(|_| Error::new("bad \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn floats_round_trip_shortest() {
        for v in [0.1f64, 1.0, 1e300, -2.5e-10, f64::MAX] {
            let text = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&text).unwrap(), v, "{text}");
        }
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd\tü❤";
        let text = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&text).unwrap(), s);
        assert_eq!(from_str::<String>(r#""Aü😀""#).unwrap(), "Aü😀");
    }

    #[test]
    fn vec_and_map_round_trip() {
        let v = vec![(String::from("x"), 1.0f64), (String::from("y"), -2.0)];
        let text = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(String, f64)>>(&text).unwrap(), v);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v: Value = from_str(r#"{"rows": [["a", 1, 2.5], ["b", 2, 3.5]], "tag": "all"}"#)
            .unwrap();
        assert_eq!(v["rows"][0][0].as_str(), Some("a"));
        assert_eq!(v["rows"][1][1].as_i64(), Some(2));
        assert_eq!(v["rows"][0][2].as_f64(), Some(2.5));
        assert!(v["tag"] == "all");
        assert!(v["missing"].is_null());
        assert!(v["rows"][99].is_null());
    }

    #[test]
    fn json_macro_builds_objects() {
        let weights = vec![1.0f32, 2.0];
        let v = json!({
            "workload": "lenet/mnist",
            "accuracy": 0.91f64,
            "weights": weights,
        });
        assert_eq!(v["workload"], "lenet/mnist");
        assert_eq!(v["accuracy"].as_f64(), Some(0.91));
        assert_eq!(v["weights"][1].as_f64(), Some(2.0));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u32, 2u32])[0].as_i64(), Some(1));
    }

    #[test]
    fn pretty_print_is_parseable() {
        let v = json!({"a": vec![1u32, 2], "b": "x"});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
