#!/usr/bin/env bash
# Offline markdown link checker: every relative link target in the repo's
# documentation must exist on disk, and every #fragment must match a
# heading in the target file (GitHub-style slugs). External
# (http/https/mailto) links are skipped — CI has no network and their
# liveness is not ours to pin.
#
# Usage: scripts/check_doc_links.sh [file.md ...]
# With no arguments, checks README.md, the top-level *.md and docs/*.md.
set -u

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md CHANGELOG.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)
fi

# GitHub's heading-to-anchor slug: lowercase, drop everything but
# alphanumerics/spaces/hyphens, spaces become hyphens.
slugify() {
  printf '%s' "$1" \
    | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/[^a-z0-9 -]//g' -e 's/ /-/g'
}

# All heading slugs of a markdown file, one per line.
heading_slugs() {
  local line
  while IFS= read -r line; do
    slugify "${line#"${line%%[^#]*}"}" | sed 's/^-*//'
    echo
  done < <(grep -E '^#{1,6} ' "$1" | sed -E 's/^#{1,6} +//')
}

fail=0
for file in "${files[@]}"; do
  [ -f "$file" ] || { echo "missing doc file: $file"; fail=1; continue; }
  dir=$(dirname "$file")
  # Inline markdown links: [text](target). Targets with a scheme are
  # skipped; a #fragment is checked against the target file's headings
  # (the current file for in-page anchors).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;
    esac
    path="${target%%#*}"
    fragment=""
    case "$target" in
      *'#'*) fragment="${target#*#}" ;;
    esac
    anchor_file="$file"
    if [ -n "$path" ]; then
      if [ -e "$dir/$path" ]; then
        anchor_file="$dir/$path"
      elif [ -e "$path" ]; then
        anchor_file="$path"
      else
        echo "$file: broken link -> $target"
        fail=1
        continue
      fi
    fi
    if [ -n "$fragment" ]; then
      case "$anchor_file" in
        *.md) ;;
        *) continue ;;  # anchors into non-markdown targets are not ours to slug
      esac
      if ! heading_slugs "$anchor_file" | grep -qxF "$fragment"; then
        echo "$file: stale anchor -> $target"
        fail=1
      fi
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*](\([^)]*\))/\1/')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK (${#files[@]} files)"
