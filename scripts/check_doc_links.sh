#!/usr/bin/env bash
# Offline markdown link checker: every relative link target in the repo's
# documentation must exist on disk. External (http/https/mailto) links are
# skipped — CI has no network and their liveness is not ours to pin.
#
# Usage: scripts/check_doc_links.sh [file.md ...]
# With no arguments, checks README.md, the top-level *.md and docs/*.md.
set -u

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md CHANGELOG.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)
fi

fail=0
for file in "${files[@]}"; do
  [ -f "$file" ] || { echo "missing doc file: $file"; fail=1; continue; }
  dir=$(dirname "$file")
  # Inline markdown links: [text](target). Targets with a scheme are skipped;
  # in-page anchors (#...) are skipped; a trailing #fragment is stripped.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"
    [ -n "$path" ] || continue
    if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
      echo "$file: broken link -> $target"
      fail=1
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*](\([^)]*\))/\1/')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check FAILED"
  exit 1
fi
echo "doc link check OK (${#files[@]} files)"
