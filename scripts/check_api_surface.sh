#!/usr/bin/env bash
# Textual lock of the workspace's public API surface.
#
# Extracts every `pub` item declaration from crates/*/src library sources
# (bins, examples, tests and benches are not API), normalises whitespace
# and writes the sorted result to API.lock. `pub use` re-export lists are
# joined across lines so a renamed re-export counts as drift;
# `pub(crate)`/`pub(super)` items are internal and excluded.
#
# This is a textual lock, not a semantic one: it pins declaration lines,
# which is enough to make any additive, removing or re-signing change to
# the public surface show up in review as an API.lock diff.
#
# Usage:
#   scripts/check_api_surface.sh          # regenerate API.lock
#   scripts/check_api_surface.sh --check  # exit 1 if API.lock is stale
set -euo pipefail

cd "$(dirname "$0")/.."

LOCK=API.lock

surface() {
  local f
  find crates/*/src -name '*.rs' | LC_ALL=C sort | while IFS= read -r f; do
    awk -v file="$f" '
      {
        line = $0
        sub(/^[ \t]+/, "", line)
        if (buf != "") {            # inside a multi-line pub use list
          buf = buf " " line
          if (line ~ /;/) { print file " " buf; buf = "" }
          next
        }
        if (line ~ /^pub (fn|struct|enum|union|trait|mod|use|const|static|type)[ <(]/) {
          if (line ~ /^pub use / && line !~ /;/) { buf = line; next }
          print file " " line
        }
      }
    ' "$f"
  done \
    | sed -E 's/[[:space:]]+/ /g; s/ \{$//; s/ where$//; s/ *$//' \
    | LC_ALL=C sort
}

case "${1:-}" in
  --check)
    if ! diff -u "$LOCK" <(surface) >/tmp/api_surface.diff 2>&1; then
      echo "error: public API surface drifted from $LOCK:" >&2
      cat /tmp/api_surface.diff >&2
      echo >&2
      echo "If the change is intentional, regenerate with scripts/check_api_surface.sh" >&2
      echo "and commit the updated $LOCK alongside the API change." >&2
      exit 1
    fi
    echo "API surface matches $LOCK"
    ;;
  "")
    surface > "$LOCK"
    echo "wrote $(wc -l < "$LOCK") public items to $LOCK"
    ;;
  *)
    echo "usage: $0 [--check]" >&2
    exit 2
    ;;
esac
